(** Deterministic fault plans for adversarial-environment testing.

    A {!plan} is a pure description of an adversarial host: per-mille rates
    for each fault class plus a seed. Whether a given fault fires is a pure
    function of [(seed, index, class)] — the [index] is a global fault-point
    counter threaded through the configuration ([Config.fseq]) so that the
    decision sequence is independent of exploration order, domain count, and
    scheduler. This is the determinism contract: replaying the same schedule
    with the same plan injects exactly the same faults.

    Fault classes:

    - [drop]: a send is silently discarded (lossy channel).
    - [dup]: a send is delivered twice (at-least-once channel).
    - [reorder]: a sent event is placed at the {e front} of the target's
      queue instead of the back (non-FIFO channel).
    - [delay]: a dequeue skips past the first dequeuable event and delivers
      the second one instead, when one exists (delayed delivery).
    - [crash]: a machine is crash-restarted at the start of an atomic block —
      control returns to the initial state's entry handler with an empty
      queue, but the persistent store survives (crash-recovery semantics).

    Rates are expressed in per-mille (0..1000). [of_string] accepts the CLI
    spec syntax ["drop=0.05,crash=0.01"] with probabilities in [0..1]. *)

type plan = {
  seed : int;
  drop : int;  (** per-mille *)
  dup : int;  (** per-mille *)
  reorder : int;  (** per-mille *)
  delay : int;  (** per-mille *)
  crash : int;  (** per-mille *)
}

let none = { seed = 0; drop = 0; dup = 0; reorder = 0; delay = 0; crash = 0 }

let is_none p =
  p.drop = 0 && p.dup = 0 && p.reorder = 0 && p.delay = 0 && p.crash = 0

let with_seed seed p = { p with seed }

(* Distinct salts per fault class so that one index yields independent
   decisions for each class probed at the same fault point. *)
let salt_drop = 0x9e3779b9
let salt_dup = 0x85ebca6b
let salt_reorder = 0xc2b2ae35
let salt_delay = 0x27d4eb2f
let salt_crash = 0x165667b1

(* SplitMix64-style finalizer, truncated to 62 bits so the result is a
   non-negative OCaml int on 64-bit platforms. Pure in its inputs. *)
let mix (a : int) (b : int) (c : int) : int =
  let z = a * 0x2545F4914F6CDD1D in
  let z = z lxor b in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = z lxor c in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  let z = z lxor (z lsr 31) in
  z land max_int

(* [fires plan ~index ~salt rate]: does the fault with class-[salt] and
   per-mille [rate] fire at fault point [index]? *)
let fires plan ~index ~salt rate =
  rate > 0 && mix plan.seed index salt mod 1000 < rate

type send_fault = Deliver | Drop | Duplicate | Reorder

(** [on_send plan ~index]: decision for the fault point of one send. Classes
    are probed in priority order drop > dup > reorder; at most one fires. *)
let on_send plan ~index : send_fault =
  if fires plan ~index ~salt:salt_drop plan.drop then Drop
  else if fires plan ~index ~salt:salt_dup plan.dup then Duplicate
  else if fires plan ~index ~salt:salt_reorder plan.reorder then Reorder
  else Deliver

(** [on_dequeue plan ~index]: deliver the second dequeuable event instead of
    the first? *)
let on_dequeue plan ~index : bool = fires plan ~index ~salt:salt_delay plan.delay

(** [on_block_start plan ~index]: crash-restart the machine before it runs
    this atomic block? *)
let on_block_start plan ~index : bool =
  fires plan ~index ~salt:salt_crash plan.crash

(* ---- spec syntax -------------------------------------------------------- *)

let class_names = [ "drop"; "dup"; "reorder"; "delay"; "crash" ]

let to_string p =
  let field name v = if v = 0 then [] else [ Fmt.str "%s=%g" name (float_of_int v /. 1000.) ] in
  String.concat ","
    (List.concat
       [
         field "drop" p.drop;
         field "dup" p.dup;
         field "reorder" p.reorder;
         field "delay" p.delay;
         field "crash" p.crash;
       ])

(** Parse a fault spec such as ["drop=0.05,crash=0.01"]. Probabilities are
    in [0..1] and are rounded to per-mille resolution. The seed of the
    returned plan is 0; set it with {!with_seed}. *)
let of_string s : (plan, string) result =
  let parse_field acc field =
    match acc with
    | Error _ as e -> e
    | Ok p -> (
      match String.index_opt field '=' with
      | None -> Error (Fmt.str "fault spec %S: expected name=prob" field)
      | Some i ->
        let name = String.sub field 0 i in
        let value = String.sub field (i + 1) (String.length field - i - 1) in
        (match float_of_string_opt value with
        | None -> Error (Fmt.str "fault spec %S: bad probability %S" field value)
        | Some f when f < 0.0 || f > 1.0 ->
          Error (Fmt.str "fault spec %S: probability out of [0,1]" field)
        | Some f -> (
          let pm = int_of_float (Float.round (f *. 1000.)) in
          match name with
          | "drop" -> Ok { p with drop = pm }
          | "dup" -> Ok { p with dup = pm }
          | "reorder" -> Ok { p with reorder = pm }
          | "delay" -> Ok { p with delay = pm }
          | "crash" -> Ok { p with crash = pm }
          | _ ->
            Error
              (Fmt.str "fault spec: unknown class %S (expected one of %s)" name
                 (String.concat ", " class_names)))))
  in
  let s = String.trim s in
  if s = "" || s = "none" then Ok none
  else
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun f -> f <> "")
    |> List.fold_left parse_field (Ok none)

let of_string_exn s =
  match of_string s with Ok p -> p | Error msg -> invalid_arg msg

let pp ppf p = Fmt.string ppf (to_string p)
