(** Compact canonical encodings of global configurations for the
    explicit-state search's seen set. Statements are interned once (by
    physical identity — agenda statements are always subterms of the
    program), names map to dense integers, and a configuration encodes to a
    short byte string whose MD5 digest is the state key. *)

type t

val create : P_static.Symtab.t -> t
(** Build the interning tables for one program. Encoders are stateful and
    not thread-safe: use one per domain (interning is deterministic, so
    separate encoders produce identical digests). *)

val digest :
  ?rename:(int -> int) -> t -> P_semantics.Config.t -> int list -> string
(** [digest t config extra]: MD5 of the canonical encoding of [config]
    followed by the integers [extra] (used for the scheduler stack).
    [?rename] digests the π-renamed configuration (ids mapped pointwise,
    machines visited in renamed-id order) without materializing it;
    [extra] is not renamed — the caller owns its meaning. *)

val machine_digest :
  ?rename:(int -> int) ->
  t -> P_semantics.Mid.t -> P_semantics.Machine.t -> string
(** MD5 of the canonical encoding of one machine binding — the unit the
    incremental {!Fingerprint} caches per physical machine value. *)

val machine_shape_digest : t -> P_semantics.Machine.t -> string
(** Identity-blind digest of one machine: the same encoding with every
    machine identifier masked to a constant. Symmetry reduction's order
    key for seeding the canonical traversal at unreferenced machines. *)

val iter_machine_mids : P_semantics.Machine.t -> (int -> unit) -> unit
(** Every machine identifier held by the machine — [self] plus each
    [Value.Machine] reference in continuations, store, argument, agenda,
    and queue — in exactly the order the canonical encoding emits them.
    The reference order the symmetry renaming's traversal follows. *)
