examples/german_verify.mli:
