lib/compile/c_emit.ml: Array Buffer List Printf String Tables
