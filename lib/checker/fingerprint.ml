(** Incremental state fingerprinting.

    The seen-set key of every engine used to be [Canon.digest], which
    re-encodes every machine of the configuration and MD5s the whole buffer
    on each query — O(state size) work per transition, even though one
    atomic block touches at most a couple of machines. This module keys a
    digest cache on *physical* machine identity: {!P_semantics.Step} updates
    configurations through {!P_semantics.Config.update}, whose persistent
    map shares every untouched machine between parent and successor, so a
    cached per-machine digest is hit for every machine the block did not
    touch and the successor fingerprint costs O(machines-changed) encoding
    work plus one short MD5 combine.

    The incremental fingerprint of a configuration is

    {v MD5( varint next_id · varint live_count
            · md5(machine_1) … md5(machine_k)      (in identifier order)
            · varint |extra| · varint extra_i … ) v}

    where [md5(machine_i)] is {!Canon.machine_digest} of that binding. The
    per-machine digests are fixed-width, so the combine is injective in
    them; the whole key is as collision-resistant as [Canon.digest] itself
    (both stand on MD5). Incremental and full digests of the same
    configuration are *different strings* — an engine must use one mode for
    a whole run, which they do.

    The "cache" is the machine value itself: {!P_semantics.Machine.t}
    carries a mutable [digest_memo] slot that [Config.update] — the one
    function through which every (re)built machine enters a configuration
    — resets to [""]. A non-empty memo is therefore only ever observed on
    a machine physically shared, untouched, with an already-digested
    configuration, and reading it is a plain field load. An external table
    keyed on physical identity cannot do this cheaply: OCaml has no
    address-based hash, and a structural hash collapses the thousands of
    near-identical versions of each machine into a handful of buckets.
    (Under the parallel engine two domains can race to fill a memo; both
    write the same canonical digest string, so either outcome is correct.
    Each context — the engines keep one per worker domain — counts its own
    {!requests}, {!hits}, and {!misses}, and every lookup lands in exactly
    one of the latter two, so after the engine sums the per-worker
    counters, [hits + misses = requests] holds exactly for any number of
    domains; only the hit/miss *split* can vary run to run, by which
    domain wins a memo-fill race.)

    [Paranoid] computes both fingerprints for every query, returns the full
    one (so a paranoid run is bit-for-bit a [Full] run), and checks the two
    stay in bijection: a violation means either an MD5 collision or a stale
    cache entry (i.e. a broken sharing guarantee), and is counted in
    {!collisions}. *)

module Config = P_semantics.Config
module Machine = P_semantics.Machine
module Mid = P_semantics.Mid

type mode = Full | Incremental | Paranoid

let mode_to_string = function
  | Full -> "full"
  | Incremental -> "incremental"
  | Paranoid -> "paranoid"

let mode_of_string = function
  | "full" -> Ok Full
  | "incremental" -> Ok Incremental
  | "paranoid" -> Ok Paranoid
  | s -> Error (Printf.sprintf "unknown fingerprint mode %S" s)

type t = {
  canon : Canon.t;
  mode : mode;
  buf : Buffer.t;
  (* paranoid-mode bijection witnesses: incremental <-> full *)
  incr_to_full : (string, string) Hashtbl.t;
  full_to_incr : (string, string) Hashtbl.t;
  mutable requests : int;
  mutable hits : int;
  mutable misses : int;
  mutable collisions : int;
}

let create ?(mode = Incremental) tab =
  { canon = Canon.create tab;
    mode;
    buf = Buffer.create 256;
    incr_to_full = Hashtbl.create 64;
    full_to_incr = Hashtbl.create 64;
    requests = 0;
    hits = 0;
    misses = 0;
    collisions = 0 }

let mode t = t.mode
let requests t = t.requests
let hits t = t.hits
let misses t = t.misses
let collisions t = t.collisions

(* Same varint as Canon.add_int (zigzag, 7 bits per byte). *)
let add_int buf i =
  let rec go i =
    if i land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr i)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (i land 0x7f)));
      go (i lsr 7)
    end
  in
  go (if i < 0 then (-2 * i) - 1 else 2 * i)

let machine_digest t id (m : Machine.t) =
  t.requests <- t.requests + 1;
  let memo = m.Machine.digest_memo in
  if String.length memo <> 0 then begin
    t.hits <- t.hits + 1;
    memo
  end
  else begin
    t.misses <- t.misses + 1;
    let d = Canon.machine_digest t.canon id m in
    m.Machine.digest_memo <- d;
    d
  end

(* Identity-blind per-machine shape, memoised like the digest: the order
   key for seeding the canonical traversal at unreferenced machines. *)
let shape_digest t (m : Machine.t) =
  let memo = m.Machine.shape_memo in
  if String.length memo <> 0 then memo
  else begin
    let d = Canon.machine_shape_digest t.canon m in
    m.Machine.shape_memo <- d;
    d
  end

(** [renaming t config]: the canonical permutation π of live machine
    identifiers for symmetry reduction, or [None] when it is the
    identity.

    π is chosen by traversal order: the live identifiers sorted ascending
    are the canonical slots, handed out in first-visit order of a
    breadth-first walk over the machine-reference graph — start at the
    root machine (identifier 0, the machine [Step.initial_config]
    creates), follow each visited machine's references in encoding order
    ({!Canon.iter_machine_mids}), and when the walk exhausts a component,
    reseed at the unvisited machine with the least (shape digest,
    identifier) key. Two configurations that differ only in the ghost
    creation order of otherwise-indistinguishable machines traverse
    isomorphically and land on the same canonical encoding.

    Soundness needs none of that: π permutes the live identifiers among
    themselves and leaves dangling (deleted) identifiers fixed — so
    renamed-live and dangling references can never collide — and the
    canonical digest is the injective encoding of the π-renamed
    configuration. Equal canonical keys therefore witness genuinely
    isomorphic configurations for *any* such π; the traversal choice only
    decides how many isomorphic states actually merge, and a heuristic
    miss (e.g. the shape tie-break falling back to raw identifiers)
    costs a missed merge, never a wrong one. *)
let renaming t (config : Config.t) : (int -> int) option =
  let live = List.rev (Config.fold (fun id _ acc -> Mid.to_int id :: acc) config []) in
  match live with
  | [] | [ _ ] -> None
  | _ ->
    let slots = Array.of_list live in
    let n = Array.length slots in
    let map = Hashtbl.create n in
    let next = ref 0 in
    let queue = Queue.create () in
    let visit id =
      if (not (Hashtbl.mem map id)) && Config.mem config (Mid.of_int id) then begin
        Hashtbl.replace map id slots.(!next);
        incr next;
        Queue.add id queue
      end
    in
    let drain () =
      while not (Queue.is_empty queue) do
        let id = Queue.pop queue in
        match Config.find config (Mid.of_int id) with
        | Some m -> Canon.iter_machine_mids m visit
        | None -> ()
      done
    in
    visit (Mid.to_int Mid.first);
    drain ();
    while !next < n do
      (* reseed at the least-(shape, id) unvisited machine *)
      let best = ref None in
      List.iter
        (fun id ->
          if not (Hashtbl.mem map id) then
            match Config.find config (Mid.of_int id) with
            | None -> ()
            | Some m ->
              let key = (shape_digest t m, id) in
              (match !best with
              | Some (k, _) when compare k key <= 0 -> ()
              | _ -> best := Some (key, id)))
        live;
      match !best with
      | None -> assert false (* !next < n means an unvisited live id exists *)
      | Some (_, id) ->
        visit id;
        drain ()
    done;
    if Hashtbl.fold (fun id slot acc -> acc && id = slot) map true then None
    else Some (fun i -> match Hashtbl.find_opt map i with Some j -> j | None -> i)

let incremental ?rename t (config : Config.t) (extra : int list) : string =
  Buffer.clear t.buf;
  add_int t.buf (Mid.to_int config.next_id);
  add_int t.buf (Config.live_count config);
  (match rename with
  | None ->
    Config.fold (fun id m () -> Buffer.add_string t.buf (machine_digest t id m)) config ()
  | Some rn ->
    (* renamed ids reorder the machines; the memo holds identity-renamed
       digests, so each machine is re-encoded under π *)
    Config.fold (fun id m acc -> (rn (Mid.to_int id), id, m) :: acc) config []
    |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
    |> List.iter (fun (_, id, m) ->
           Buffer.add_string t.buf (Canon.machine_digest ~rename:rn t.canon id m)));
  add_int t.buf (List.length extra);
  List.iter (add_int t.buf) extra;
  (* mirrors Canon.digest: fault counter appended only when nonzero *)
  if config.fseq > 0 then add_int t.buf config.fseq;
  Digest.string (Buffer.contents t.buf)

(* ------------------------------------------------------------------ *)
(* Integer fingerprints (for the arena-backed state stores)            *)
(* ------------------------------------------------------------------ *)

(* Streaming 63-bit FNV-1a over the same byte stream as [incremental],
   finished with a splitmix-style avalanche so low bits are usable as
   table indices. Runs entirely on immediate native ints: no Buffer, no
   Digest string, no allocation per state. *)
let fnv_prime = 0x100000001b3
let fnv_basis = 0x3bf29ce484222325 (* the 64-bit FNV basis folded to 62 bits *)

let fnv_byte h b = (h lxor b) * fnv_prime land max_int

let fnv_int h i =
  let h = ref h in
  let i = ref i in
  for _ = 0 to 7 do
    h := fnv_byte !h (!i land 0xff);
    i := !i lsr 8
  done;
  !h

let fnv_string h s =
  let h = ref h in
  for i = 0 to String.length s - 1 do
    h := fnv_byte !h (Char.code (String.unsafe_get s i))
  done;
  !h

let finalize h =
  let h = h lxor (h lsr 30) in
  let h = h * 0x3f58476d1ce4e5b9 land max_int in
  let h = h lxor (h lsr 27) in
  let h = h * 0x14d049bb133111eb land max_int in
  h lxor (h lsr 31)

let digest ?rename t (config : Config.t) (extra : int list) : string =
  match t.mode with
  | Full -> Canon.digest ?rename t.canon config extra
  | Incremental -> incremental ?rename t config extra
  | Paranoid ->
    let inc = incremental ?rename t config extra in
    let full = Canon.digest ?rename t.canon config extra in
    (match Hashtbl.find_opt t.incr_to_full inc with
    | Some full' when not (String.equal full full') ->
      t.collisions <- t.collisions + 1
    | Some _ -> ()
    | None -> Hashtbl.add t.incr_to_full inc full);
    (match Hashtbl.find_opt t.full_to_incr full with
    | Some inc' when not (String.equal inc inc') ->
      t.collisions <- t.collisions + 1
    | Some _ -> ()
    | None -> Hashtbl.add t.full_to_incr full inc);
    full

(** A 63-bit integer fingerprint of [config], for the compact and
    bitstate stores. [Incremental] streams the per-machine digest cache
    straight into the hash with no per-state string; [Full]/[Paranoid]
    hash the canonical digest string (keeping paranoid's bijection
    check), so every mode still keys on the same canonical encoding. *)
let digest_int ?rename t (config : Config.t) (extra : int list) : int =
  match t.mode with
  | Full | Paranoid ->
    finalize (fnv_string fnv_basis (digest ?rename t config extra))
  | Incremental ->
    let h = fnv_int fnv_basis (Mid.to_int config.next_id) in
    let h = fnv_int h (Config.live_count config) in
    let h =
      match rename with
      | None ->
        Config.fold (fun id m h -> fnv_string h (machine_digest t id m)) config h
      | Some rn ->
        Config.fold (fun id m acc -> (rn (Mid.to_int id), id, m) :: acc) config []
        |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
        |> List.fold_left
             (fun h (_, id, m) ->
               fnv_string h (Canon.machine_digest ~rename:rn t.canon id m))
             h
    in
    let h = fnv_int h (List.length extra) in
    let h = List.fold_left fnv_int h extra in
    (* mirrors Canon.digest: fault counter mixed in only when nonzero *)
    let h = if config.fseq > 0 then fnv_int h config.fseq else h in
    finalize h
