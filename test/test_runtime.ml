(* Tests for the table-driven runtime: the three-call API, run-to-completion
   scheduling, foreign functions, external memory, deferral and dedup in the
   runtime queue, deletion, errors, and a multi-threaded host smoke test. *)

module Api = P_runtime.Api
module Rt_value = P_runtime.Rt_value
module Exec = P_runtime.Exec
module Context = P_runtime.Context

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let runtime_of ?name p =
  let { P_compile.Compile.driver; _ } = P_compile.Compile.compile ?name p in
  Api.create driver

let with_trace rt =
  let items = ref [] in
  Api.set_trace_hook rt (Some (fun it -> items := it :: !items));
  fun () -> List.rev !items

(* ---------------- basic execution ---------------- *)

let test_pingpong_runs () =
  let rt = runtime_of (P_examples_lib.Pingpong.program ~rounds:3 ()) in
  let get = with_trace rt in
  let h = Api.create_machine rt "Pinger" in
  (* run-to-completion: everything happened inside create_machine *)
  check bool_t "pinger finished" true
    (Api.current_state_name rt h = Some "Finished");
  check bool_t "ponger deleted itself" false (Api.is_alive rt 1);
  let sends =
    List.length
      (List.filter (function P_runtime.Rt_trace.Sent _ -> true | _ -> false) (get ()))
  in
  (* 3 pings + 3 pongs + 1 done *)
  check int_t "sends" 7 sends

let test_add_event_drives_machine () =
  let rt = runtime_of (P_examples_lib.Switch_led.program ()) in
  let lit = ref false in
  Api.register_foreign rt "set_led" (fun _ args ->
      (match args with [ Rt_value.Bool b ] -> lit := b | _ -> assert false);
      Rt_value.Null);
  let h = Api.create_machine rt "SwitchLed" in
  check bool_t "off initially" false !lit;
  Api.add_event rt h "SwitchOn" Rt_value.Null;
  check bool_t "on" true !lit;
  check bool_t "in On state" true (Api.current_state_name rt h = Some "On");
  Api.add_event rt h "SwitchOff" Rt_value.Null;
  check bool_t "off again" false !lit

let test_runtime_assert_raises () =
  let rt = runtime_of (P_examples_lib.Pingpong.buggy_program ~rounds:2 ()) in
  match Api.create_machine rt "Pinger" with
  | exception Exec.Runtime_error msg ->
    check bool_t "assert message" true (Astring_contains.contains msg "assertion failed")
  | _ -> Alcotest.fail "buggy pinger must trip its assertion"

let test_runtime_unhandled_event_raises () =
  let rt = runtime_of (P_examples_lib.Switch_led.buggy_program ()) in
  let _ =
    Api.register_foreign rt "set_led" (fun _ _ -> Rt_value.Null)
  in
  let h = Api.create_machine rt "SwitchLed" in
  Api.add_event rt h "SwitchOn" Rt_value.Null;
  (* second SwitchOn is unhandled in the buggy driver *)
  match Api.add_event rt h "SwitchOn" Rt_value.Null with
  | exception Exec.Runtime_error msg ->
    check bool_t "names the event" true (Astring_contains.contains msg "SwitchOn")
  | _ -> Alcotest.fail "expected unhandled-event error"

let test_runtime_send_to_deleted_raises () =
  let rt = runtime_of (P_examples_lib.Switch_led.program ()) in
  let _ = Api.register_foreign rt "set_led" (fun _ _ -> Rt_value.Null) in
  let h = Api.create_machine rt "SwitchLed" in
  Api.add_event rt h "Delete" Rt_value.Null;
  check bool_t "deleted" false (Api.is_alive rt h);
  match Api.add_event rt h "SwitchOn" Rt_value.Null with
  | exception Exec.Runtime_error _ -> ()
  | _ -> Alcotest.fail "send to deleted machine must fail"

let test_runtime_unknowns () =
  let rt = runtime_of (P_examples_lib.Pingpong.program ()) in
  (match Api.create_machine rt "Nope" with
  | exception Exec.Runtime_error _ -> ()
  | _ -> Alcotest.fail "unknown machine");
  let h = Api.create_machine rt "Ponger" in
  match Api.add_event rt h "Nope" Rt_value.Null with
  | exception Exec.Runtime_error _ -> ()
  | _ -> Alcotest.fail "unknown event"

(* ---------------- bounded buffer: deferral + payload counters ---------------- *)

let test_bounded_buffer_in_runtime () =
  let rt = runtime_of (P_examples_lib.Bounded_buffer.program ~items:5 ~credits:2 ()) in
  let h = Api.create_machine rt "Producer" in
  check bool_t "producer alive and done" true (Api.is_alive rt h);
  (* all credits returned: producer idles in Produce with no queued events *)
  check int_t "producer queue drained" 0 (Api.queue_length rt h)

(* ---------------- foreign functions and external memory ---------------- *)

type Context.ext += Counter of int ref

let test_external_memory () =
  let rt = runtime_of (P_examples_lib.Switch_led.program ()) in
  let writes = ref 0 in
  Api.register_foreign rt "set_led" (fun ctx _ ->
      (match ctx.Context.external_mem with
      | Some (Counter r) -> incr r
      | _ -> ());
      incr writes;
      Rt_value.Null);
  let h = Api.create_machine rt "SwitchLed" in
  let counted = ref 0 in
  Api.set_context rt h (Counter counted);
  check bool_t "get_context round-trips" true
    (match Api.get_context rt h with Some (Counter r) -> r == counted | _ -> false);
  Api.add_event rt h "SwitchOn" Rt_value.Null;
  Api.add_event rt h "SwitchOff" Rt_value.Null;
  check int_t "foreign sees external memory" 2 !counted;
  check int_t "foreign called per entry" 3 !writes (* initial Off + On + Off *)

let test_unregistered_foreign_fails () =
  let rt = runtime_of (P_examples_lib.Switch_led.program ()) in
  match Api.create_machine rt "SwitchLed" with
  | exception Exec.Runtime_error msg ->
    check bool_t "mentions the function" true (Astring_contains.contains msg "set_led")
  | _ -> Alcotest.fail "unregistered foreign function must fail"

(* ---------------- rt values ---------------- *)

let test_rt_value_ops () =
  let open Rt_value in
  check bool_t "⊥ + 1" true (binop P_compile.Tables.Add Null (Int 1) = Null);
  check bool_t "2 < 3" true (binop P_compile.Tables.Lt (Int 2) (Int 3) = Bool true);
  (match binop P_compile.Tables.Div (Int 1) (Int 0) with
  | exception Type_error _ -> ()
  | _ -> Alcotest.fail "div by zero");
  match truth (Int 1) with
  | exception Type_error _ -> ()
  | _ -> Alcotest.fail "truth of non-bool"

(* ---------------- threads ---------------- *)

let test_two_machines_two_threads () =
  (* two independent switch-led drivers driven from two host threads; the
     per-machine claim flags must keep each consistent *)
  let rt = runtime_of (P_examples_lib.Switch_led.program ()) in
  let states = Hashtbl.create 2 in
  Api.register_foreign rt "set_led" (fun ctx args ->
      (match args with
      | [ Rt_value.Bool b ] -> Hashtbl.replace states ctx.Context.self b
      | _ -> assert false);
      Rt_value.Null);
  let h1 = Api.create_machine rt "SwitchLed" in
  let h2 = Api.create_machine rt "SwitchLed" in
  let driver h =
    Thread.create
      (fun () ->
        for i = 1 to 500 do
          Api.add_event rt h (if i mod 2 = 1 then "SwitchOn" else "SwitchOff") Rt_value.Null
        done)
      ()
  in
  let t1 = driver h1 and t2 = driver h2 in
  Thread.join t1;
  Thread.join t2;
  check bool_t "machine 1 consistent" true (Hashtbl.find states h1 = false);
  check bool_t "machine 2 consistent" true (Hashtbl.find states h2 = false);
  check bool_t "both alive" true (Api.is_alive rt h1 && Api.is_alive rt h2)

(* ---------------- inbox scalability ---------------- *)

let test_inbox_bulk_enqueue_is_fast () =
  (* regression for the O(n²) list-append inbox: 10k distinct enqueues and
     a full FIFO drain must complete in linear-ish time *)
  let { P_compile.Compile.driver; _ } =
    P_compile.Compile.compile (P_examples_lib.Pingpong.program ())
  in
  let ctx = Context.create ~self:0 ~ty:0 ~table:driver.dr_machines.(0) () in
  (* drop entry code from the agenda so only the queue is in play *)
  ctx.Context.agenda <- [];
  let n = 10_000 in
  let t0 = Sys.time () in
  for i = 1 to n do
    ignore (Context.enqueue ctx 0 (Rt_value.Int i) : Context.enqueue_result)
  done;
  check int_t "all queued" n (Context.inbox_length ctx);
  (* the deduplicating ⊕ drops an identical (event, payload) pair *)
  ignore (Context.enqueue ctx 0 (Rt_value.Int 1) : Context.enqueue_result);
  check int_t "duplicate dropped" n (Context.inbox_length ctx);
  (* drain in FIFO order *)
  let ok = ref true in
  for i = 1 to n do
    match Context.dequeue ctx with
    | Some (0, Rt_value.Int j) when j = i -> ()
    | _ -> ok := false
  done;
  check bool_t "FIFO order preserved" true !ok;
  check int_t "drained" 0 (Context.inbox_length ctx);
  let elapsed = Sys.time () -. t0 in
  check bool_t
    (Printf.sprintf "linear-ish time (%.3fs)" elapsed)
    true (elapsed < 2.0)

let test_inbox_interleaved_enqueue_dequeue () =
  (* enqueues racing a partially drained front list must not reorder *)
  let { P_compile.Compile.driver; _ } =
    P_compile.Compile.compile (P_examples_lib.Pingpong.program ())
  in
  let ctx = Context.create ~self:0 ~ty:0 ~table:driver.dr_machines.(0) () in
  ctx.Context.agenda <- [];
  ignore (Context.enqueue ctx 0 (Rt_value.Int 1) : Context.enqueue_result);
  ignore (Context.enqueue ctx 0 (Rt_value.Int 2) : Context.enqueue_result);
  check bool_t "first out" true (Context.dequeue ctx = Some (0, Rt_value.Int 1));
  ignore (Context.enqueue ctx 0 (Rt_value.Int 3) : Context.enqueue_result);
  check bool_t "second out" true (Context.dequeue ctx = Some (0, Rt_value.Int 2));
  (* a dequeued pair may be enqueued again — membership must have aged out *)
  ignore (Context.enqueue ctx 0 (Rt_value.Int 1) : Context.enqueue_result);
  check bool_t "third out" true (Context.dequeue ctx = Some (0, Rt_value.Int 3));
  check bool_t "re-enqueued out" true (Context.dequeue ctx = Some (0, Rt_value.Int 1));
  check bool_t "empty" true (Context.dequeue ctx = None)

let suite =
  [ Alcotest.test_case "pingpong runs" `Quick test_pingpong_runs;
    Alcotest.test_case "inbox bulk enqueue" `Quick test_inbox_bulk_enqueue_is_fast;
    Alcotest.test_case "inbox interleaving" `Quick test_inbox_interleaved_enqueue_dequeue;
    Alcotest.test_case "add_event drives" `Quick test_add_event_drives_machine;
    Alcotest.test_case "assert raises" `Quick test_runtime_assert_raises;
    Alcotest.test_case "unhandled raises" `Quick test_runtime_unhandled_event_raises;
    Alcotest.test_case "send to deleted" `Quick test_runtime_send_to_deleted_raises;
    Alcotest.test_case "unknown names" `Quick test_runtime_unknowns;
    Alcotest.test_case "bounded buffer" `Quick test_bounded_buffer_in_runtime;
    Alcotest.test_case "external memory" `Quick test_external_memory;
    Alcotest.test_case "unregistered foreign" `Quick test_unregistered_foreign_fails;
    Alcotest.test_case "rt values" `Quick test_rt_value_ops;
    Alcotest.test_case "two threads" `Quick test_two_machines_two_threads ]
