test/test_compile.ml: Alcotest Array Astring_contains List Option P_compile P_examples_lib P_parser P_syntax String
