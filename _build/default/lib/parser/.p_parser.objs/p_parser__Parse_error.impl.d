lib/parser/parse_error.ml: Fmt P_syntax
