lib/usb/gen.mli: P_syntax
