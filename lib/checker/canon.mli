(** Compact canonical encodings of global configurations for the
    explicit-state search's seen set. Statements are interned once (by
    physical identity — agenda statements are always subterms of the
    program), names map to dense integers, and a configuration encodes to a
    short byte string whose MD5 digest is the state key. *)

type t

val create : P_static.Symtab.t -> t
(** Build the interning tables for one program. Encoders are stateful and
    not thread-safe: use one per domain (interning is deterministic, so
    separate encoders produce identical digests). *)

val digest : t -> P_semantics.Config.t -> int list -> string
(** [digest t config extra]: MD5 of the canonical encoding of [config]
    followed by the integers [extra] (used for the scheduler stack). *)

val machine_digest :
  t -> P_semantics.Mid.t -> P_semantics.Machine.t -> string
(** MD5 of the canonical encoding of one machine binding — the unit the
    incremental {!Fingerprint} caches per physical machine value. *)
