lib/checker/parallel.ml: Array Canon Delay_bounded Domain Dynarray Hashtbl List P_semantics P_static Search Unix
