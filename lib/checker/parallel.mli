(** Multicore state-space exploration: {!Engine.run_parallel} over the
    delay-bounded spec — a level-synchronous parallel BFS on OCaml 5
    domains (the paper's case study mentions "using multicores to scale
    the state exploration").

    Semantically identical to {!Delay_bounded.explore} with the causal
    discipline: states, transitions, and verdicts are independent of
    [domains] (the test suite checks exact agreement); only wall-clock time
    changes, and only on machines with more than one core. *)

val explore :
  ?max_states:int ->
  ?domains:int ->
  ?spawn_threshold:int ->
  ?fingerprint:Fingerprint.mode ->
  ?instr:Search.instr ->
  delay_bound:int ->
  P_static.Symtab.t ->
  Search.result
(** [explore ~delay_bound tab] with frontier levels split across [domains]
    workers (default 4). Levels smaller than [spawn_threshold] (default 64)
    run sequentially — domain spawns and minor-GC synchronization only pay
    off on real work. The [max_states] budget is checked between levels, so
    the final count may overshoot slightly. [fingerprint] selects the
    state-key strategy (default [Incremental]); each worker keeps its own
    per-machine digest cache, persistent across levels.

    With [instr] metrics on, workers additionally count
    [checker.expansions] (labelled [engine=parallel]) from inside their
    domains — each into its own registry shard, so instrumentation adds no
    cross-domain contention; the merged total equals the sequential
    transition count on clean programs. *)
