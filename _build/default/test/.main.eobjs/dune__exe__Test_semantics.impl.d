test/test_semantics.ml: Alcotest Ast Builder Config Equeue Errors Fmt List Machine Mid Names Option P_examples_lib P_semantics P_static P_syntax Ptype QCheck2 QCheck_alcotest Simulate Step Value
