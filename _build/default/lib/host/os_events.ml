(** The callbacks a driver receives from the simulated kernel: plug-and-play
    and power transitions, interrupts from hardware, and I/O requests — the
    "large number of un-coordinated events sent from different sources such
    as OS, hardware and other drivers" of the paper's case study. *)

type t =
  | Pnp_start
  | Pnp_stop
  | Power_suspend
  | Power_resume
  | Interrupt of { line : string; data : int }
  | Io_request of { id : int; kind : string }

let pp ppf = function
  | Pnp_start -> Fmt.string ppf "PnP start"
  | Pnp_stop -> Fmt.string ppf "PnP stop"
  | Power_suspend -> Fmt.string ppf "power suspend"
  | Power_resume -> Fmt.string ppf "power resume"
  | Interrupt { line; data } -> Fmt.pf ppf "interrupt %s(%d)" line data
  | Io_request { id; kind } -> Fmt.pf ppf "io %s #%d" kind id

(** The interface every driver under test exposes to the host — with or
    without P underneath. *)
type driver = {
  name : string;
  add_device : unit -> unit;  (** EvtAddDevice *)
  remove_device : unit -> unit;  (** EvtRemoveDevice *)
  callback : t -> unit;  (** any other OS callback *)
}
