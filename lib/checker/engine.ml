(** The shared exploration core.

    Every systematic-testing engine in this library walks the same
    transition system — configurations stepped one atomic block at a time,
    ghost [*] choices resolved per block — and differs only in *policy*:
    which machine may run next (scheduler), what a schedule costs (budget),
    how the frontier is ordered (BFS/DFS), whether ghost choices are
    enumerated or sampled, and what happens on an error. Those policies
    used to be five hand-copied BFS loops; this module is the single loop
    they are now instantiations of:

    - {!Delay_bounded}: stack scheduler, budget = delays, exhaustive
      choices, BFS, stop at the first error;
    - {!Depth_bounded}: full nondeterminism, budget = depth (truncating on
      exhaustion), BFS;
    - {!Parallel}: the delay-bounded spec driven by {!run_parallel}, a
      level-synchronous frontier split across OCaml 5 domains;
    - {!Random_walk}: a one-move random scheduler, sampled choices, no
      seen set — each walk is a degenerate DFS;
    - {!Liveness} and {!Coverage}: full-nondeterminism resp. delay-bounded
      exploration with an {!observer} receiving every state and edge
      ([stop_on_error = false] turns the loop into graph construction).

    State identity is a {!Fingerprint} over the configuration plus the
    scheduler's {!scheduler.encode} extras; counterexamples are replayed
    from a compact edge table (parent index, move code, ghost choices)
    instead of per-node traces, so frontier memory is O(1) per node for
    every engine.

    Determinism contract: for a fixed spec the loop visits nodes, counts
    states/transitions, and reports verdicts identically run over run, and
    {!run_parallel} agrees exactly with {!run} on the same spec (the merge
    is sequential in worker order). The engine regression tests pin the
    (verdict, states, transitions) triples to their pre-refactor values. *)

module Config = P_semantics.Config
module Step = P_semantics.Step
module Mid = P_semantics.Mid
module Trace = P_semantics.Trace
module Errors = P_semantics.Errors
module Symtab = P_static.Symtab

(* ------------------------------------------------------------------ *)
(* Schedulers                                                          *)
(* ------------------------------------------------------------------ *)

(** Stack discipline on sends and creations: [Causal] pushes the receiver
    on top (the paper's scheduler — it runs next); [Round_robin] appends
    it at the bottom, the baseline delaying scheduler of Emmi et al. *)
type discipline = Causal | Round_robin

let rotate stack =
  match stack with
  | [] | [ _ ] -> stack
  | top :: rest -> rest @ [ top ]

let rec rotate_k stack k = if k <= 0 then stack else rotate_k (rotate stack) (k - 1)

(* Stack update shared by search, replay, and the d=0 equivalence argument. *)
let apply_outcome ?(discipline = Causal) stack outcome =
  let insert id stack =
    match discipline with Causal -> id :: stack | Round_robin -> stack @ [ id ]
  in
  match (outcome : Step.outcome) with
  | Step.Progress (config, Step.Sent { target; _ }) ->
    let stack =
      if List.exists (Mid.equal target) stack then stack else insert target stack
    in
    Some (config, stack)
  | Step.Progress (config, Step.Created id) -> Some (config, insert id stack)
  | Step.Blocked config | Step.Terminated config ->
    Some (config, match stack with [] -> [] | _ :: rest -> rest)
  | Step.Failed _ | Step.Need_more_choices -> None

type 'sched scheduler = {
  init : Mid.t -> 'sched;
  moves :
    Symtab.t -> Config.t -> 'sched -> budget_left:int ->
    (int * 'sched * Mid.t * int) list;
      (** candidate moves in deterministic order, each as [(code,
          scheduler-state positioned at the move, machine to run, budget
          cost)]; [code] is what the edge table stores *)
  decode : 'sched -> int -> ('sched * Mid.t) option;
      (** re-position a recorded move code during replay *)
  apply : 'sched -> Step.outcome -> (Config.t * 'sched) option;
      (** advance past a non-failing outcome; [None] on failure *)
  encode : 'sched -> int list;  (** scheduler part of the state key *)
}

let full_nondet : unit scheduler =
  { init = (fun _ -> ());
    moves =
      (fun tab config () ~budget_left:_ ->
        List.map (fun mid -> (Mid.to_int mid, (), mid, 1)) (Step.enabled tab config));
    decode = (fun () code -> Some ((), Mid.of_int code));
    apply = (fun () outcome -> Option.map (fun c -> (c, ())) (Step.outcome_config outcome));
    encode = (fun () -> []) }

let stack_sched discipline : Mid.t list scheduler =
  { init = (fun id0 -> [ id0 ]);
    moves =
      (fun _tab _config stack ~budget_left ->
        let width = List.length stack in
        let max_rot = if width <= 1 then 0 else min budget_left (width - 1) in
        let rec go k acc =
          if k > max_rot then List.rev acc
          else
            match rotate_k stack k with
            | [] -> List.rev acc
            | top :: _ as s -> go (k + 1) ((k, s, top, k) :: acc)
        in
        go 0 []);
    decode =
      (fun stack k ->
        match rotate_k stack k with [] -> None | top :: _ as s -> Some (s, top));
    apply = (fun stack outcome -> apply_outcome ~discipline stack outcome);
    encode = (fun stack -> List.map Mid.to_int stack) }

let random_pick draw : unit scheduler =
  { full_nondet with
    moves =
      (fun tab config () ~budget_left:_ ->
        match Step.enabled tab config with
        | [] -> []
        | enabled ->
          let mid = List.nth enabled (draw (List.length enabled)) in
          [ (Mid.to_int mid, (), mid, 1) ]) }

(* ------------------------------------------------------------------ *)
(* Specs, observers                                                    *)
(* ------------------------------------------------------------------ *)

type resolver = Exhaustive | Sampled of (unit -> bool)
type frontier = Bfs | Dfs

type edge_dst =
  | Dst_new of int  (** first visit; the state was just assigned this index *)
  | Dst_seen of int  (** the seen set already held this state *)
  | Dst_failed of Errors.t  (** the block reached an error configuration *)

type observer = {
  on_state : int -> Config.t -> unit;
      (** a state enters the seen set, with its dense index (root is 0) *)
  on_edge :
    src:int -> src_config:Config.t -> by:Mid.t -> resolved:Search.resolved ->
    dst:edge_dst -> unit;
      (** every explored transition, including duplicates and failures *)
}

type 'sched spec = {
  scheduler : 'sched scheduler;
  bound : int;  (** the budget: delays, depth, or walk blocks *)
  truncate_on_exhaust : bool;
      (** pop-time check: a node with [spent >= bound] marks the stats
          truncated instead of expanding (depth bounding, walk budgets);
          when false the budget only limits [moves] (delay bounding) *)
  frontier : frontier;
  resolver : resolver;
  track_seen : bool;  (** false = no fingerprints, no dedup (random walk) *)
  dedup : bool;  (** the ⊕ queue append, forwarded to [run_atomic] *)
  stop_on_error : bool;
      (** raise at the first failure (with a replayed trace) vs record the
          edge and keep exploring (graph construction) *)
  max_states : int;
  max_depth : int;
  fp_mode : Fingerprint.mode;
}

let spec ?(bound = max_int) ?(truncate_on_exhaust = false) ?(frontier = Bfs)
    ?(resolver = Exhaustive) ?(track_seen = true) ?(dedup = true)
    ?(stop_on_error = true) ?(max_states = 1_000_000) ?(max_depth = max_int)
    ?(fp_mode = Fingerprint.Incremental) scheduler =
  { scheduler;
    bound;
    truncate_on_exhaust;
    frontier;
    resolver;
    track_seen;
    dedup;
    stop_on_error;
    max_states;
    max_depth;
    fp_mode }

(* ------------------------------------------------------------------ *)
(* The core                                                            *)
(* ------------------------------------------------------------------ *)

type 'sched node = {
  config : Config.t;
  sched : 'sched;
  spent : int;
  depth : int;
  idx : int;  (** edge-table index, for replay *)
  sidx : int;  (** dense state index, for observers *)
}

(* Edge bookkeeping for counterexample replay: to reach node [idx], decode
   [move] against the parent's scheduler state and run the resulting
   machine with [choices]. *)
type edge = { parent : int; move : int; choices : bool list }

type 'sched t = {
  tab : Symtab.t;
  spec : 'sched spec;
  seen : (string, int * int) Hashtbl.t;  (* digest -> (state idx, min spent) *)
  edges : edge option Dynarray.t;  (* indexed by node idx; None for the root *)
  stats : Search.stats;
  meters : Search.meters option;
  ticker : Search.ticker;
  observer : observer option;
}

(* A successor produced by expansion, not yet integrated (the same shape
   the parallel driver ships from its workers). *)
type 'sched successor = {
  s_digest : string;  (* "" when failed or the seen set is off *)
  s_resolved : Search.resolved;
  s_by : Mid.t;
  s_next : (Config.t * 'sched) option;  (* None = the edge fails *)
  s_spent : int;
  s_depth : int;
  s_parent_idx : int;
  s_parent_sidx : int;
  s_parent_config : Config.t;
  s_move : int;
}

let resolve spec tab config mid : Search.resolved list =
  match spec.resolver with
  | Exhaustive -> Search.resolutions ~dedup:spec.dedup tab config mid
  | Sampled draw ->
    (* one sampled resolution; draw order matches the historical walker:
       one boolean per Need_more_choices re-run, appended at the end *)
    let rec go rev_choices =
      let choices = List.rev rev_choices in
      match Step.run_atomic ~dedup:spec.dedup tab config mid ~choices with
      | Step.Need_more_choices, _ -> go (draw () :: rev_choices)
      | outcome, items -> { Search.choices; outcome; items }
    in
    [ go [] ]

(* Expand one node into raw successors. Pure apart from the fingerprint
   cache and the optional per-resolution counter, both of which are
   worker-local under [run_parallel]. *)
let expand ?expansions ~fp (t : 'sched t) (node : 'sched node) :
    'sched successor list =
  let budget_left = t.spec.bound - node.spent in
  List.concat_map
    (fun (code, sched_m, mid, cost) ->
      List.filter_map
        (fun (r : Search.resolved) ->
          (match expansions with
          | None -> ()
          | Some c -> P_obs.Metrics.incr c);
          let mk s_digest s_next =
            { s_digest;
              s_resolved = r;
              s_by = mid;
              s_next;
              s_spent = node.spent + cost;
              s_depth = node.depth + 1;
              s_parent_idx = node.idx;
              s_parent_sidx = node.sidx;
              s_parent_config = node.config;
              s_move = code }
          in
          match r.outcome with
          | Step.Failed _ -> Some (mk "" None)
          | Step.Need_more_choices -> assert false
          | outcome -> (
            match t.spec.scheduler.apply sched_m outcome with
            | None -> None
            | Some ((config', sched') as next) ->
              let digest =
                match fp with
                | None -> ""
                | Some fp ->
                  Fingerprint.digest fp config' (t.spec.scheduler.encode sched')
              in
              Some (mk digest (Some next))))
        (resolve t.spec t.tab node.config mid))
    (t.spec.scheduler.moves t.tab node.config node.sched ~budget_left)

(* Replay the edge chain leading to edge-table index [idx] to rebuild the
   trace from the initial configuration, along with the
   scheduler-independent schedule — per block, the machine that ran and
   the ghost choices it consumed — that {!Replay} and the on-disk trace
   artifact re-execute. *)
let replay (t : 'sched t) idx : Trace.t * (Mid.t * bool list) list =
  let rec chain idx acc =
    match Dynarray.get t.edges idx with
    | None -> acc
    | Some e -> chain e.parent (e :: acc)
  in
  let path = chain idx [] in
  let config0, id0, items0 = Step.initial_config t.tab in
  let rec follow config sched items sched_rev = function
    | [] -> (items, List.rev sched_rev)
    | (e : edge) :: rest -> (
      match t.spec.scheduler.decode sched e.move with
      | None -> (items, List.rev sched_rev) (* cannot happen on a recorded path *)
      | Some (sched_m, mid) -> (
        let outcome, new_items =
          Step.run_atomic ~dedup:t.spec.dedup t.tab config mid ~choices:e.choices
        in
        let items = items @ new_items in
        let sched_rev = (mid, e.choices) :: sched_rev in
        match t.spec.scheduler.apply sched_m outcome with
        | Some (config, sched) -> follow config sched items sched_rev rest
        | None -> (items, List.rev sched_rev) (* the final, failing edge *)))
  in
  follow config0 (t.spec.scheduler.init id0) items0 [] path

exception Found of Search.counterexample

let observe_edge t (s : 'sched successor) dst =
  match t.observer with
  | None -> ()
  | Some o ->
    o.on_edge ~src:s.s_parent_sidx ~src_config:s.s_parent_config ~by:s.s_by
      ~resolved:s.s_resolved ~dst

(* Merge one successor into the seen set / frontier. Sequential also under
   [run_parallel], which keeps both drivers deterministic. *)
let integrate (t : 'sched t) ~push (s : 'sched successor) =
  t.stats.transitions <- t.stats.transitions + 1;
  (match t.meters with
  | None -> ()
  | Some m -> P_obs.Metrics.incr m.Search.m_transitions);
  Search.tick t.ticker;
  match s.s_next with
  | None ->
    let error =
      match s.s_resolved.outcome with Step.Failed e -> e | _ -> assert false
    in
    if t.spec.stop_on_error then begin
      let idx = Dynarray.length t.edges in
      Dynarray.add_last t.edges
        (Some { parent = s.s_parent_idx; move = s.s_move; choices = s.s_resolved.choices });
      let trace, schedule = replay t idx in
      raise (Found { Search.error; trace; depth = s.s_depth; schedule })
    end
    else observe_edge t s (Dst_failed error)
  | Some (config', sched') ->
    let record_new () =
      let sidx = t.stats.states in
      t.stats.states <- t.stats.states + 1;
      (match t.meters with
      | None -> ()
      | Some m ->
        P_obs.Metrics.incr m.Search.m_states;
        P_obs.Metrics.set_max m.Search.m_queue_hwm
          (Search.queue_hwm_of_config config'));
      (match t.observer with None -> () | Some o -> o.on_state sidx config');
      sidx
    in
    let enqueue sidx =
      let idx = Dynarray.length t.edges in
      Dynarray.add_last t.edges
        (Some { parent = s.s_parent_idx; move = s.s_move; choices = s.s_resolved.choices });
      if s.s_depth > t.stats.max_depth then t.stats.max_depth <- s.s_depth;
      push
        { config = config';
          sched = sched';
          spent = s.s_spent;
          depth = s.s_depth;
          idx;
          sidx }
    in
    if not t.spec.track_seen then begin
      let sidx = record_new () in
      observe_edge t s (Dst_new sidx);
      enqueue sidx
    end
    else
      match Hashtbl.find_opt t.seen s.s_digest with
      | Some (sidx, best) when best <= s.s_spent ->
        (match t.meters with
        | None -> ()
        | Some m -> P_obs.Metrics.incr m.Search.m_dedup_hits);
        observe_edge t s (Dst_seen sidx)
      | Some (sidx, _) ->
        (* reached again with strictly smaller budget spent: the spare
           budget can reach new successors, so re-expand *)
        Hashtbl.replace t.seen s.s_digest (sidx, s.s_spent);
        observe_edge t s (Dst_seen sidx);
        enqueue sidx
      | None ->
        let sidx = record_new () in
        Hashtbl.replace t.seen s.s_digest (sidx, s.s_spent);
        observe_edge t s (Dst_new sidx);
        enqueue sidx

(* Shared prologue: context, root node, root bookkeeping. *)
let init_run ?observer ~instr ~engine (spec : 'sched spec) tab ~fp =
  let stats = Search.new_stats () in
  let t =
    { tab;
      spec;
      seen = Hashtbl.create 4096;
      edges = Dynarray.create ();
      stats;
      meters = Search.meters ~engine instr;
      ticker = Search.ticker instr stats;
      observer }
  in
  let config0, id0, _ = Step.initial_config tab in
  let sched0 = spec.scheduler.init id0 in
  Dynarray.add_last t.edges None;
  let root =
    { config = config0; sched = sched0; spent = 0; depth = 0; idx = 0; sidx = 0 }
  in
  if spec.track_seen then begin
    let fp = Option.get fp in
    let digest = Fingerprint.digest fp config0 (spec.scheduler.encode sched0) in
    Hashtbl.replace t.seen digest (0, 0)
  end;
  stats.states <- 1;
  (match t.meters with
  | None -> ()
  | Some m ->
    P_obs.Metrics.incr m.Search.m_states;
    P_obs.Metrics.set_max m.Search.m_queue_hwm (Search.queue_hwm_of_config config0));
  (match observer with None -> () | Some o -> o.on_state 0 config0);
  (t, root)

let flush_fp_meters (t : 'sched t) fps =
  match t.meters with
  | None -> ()
  | Some m ->
    List.iter
      (fun fp ->
        let add c n = if n > 0 then P_obs.Metrics.add c n in
        add m.Search.m_fp_hits (Fingerprint.hits fp);
        add m.Search.m_fp_misses (Fingerprint.misses fp);
        add m.Search.m_fp_collisions (Fingerprint.collisions fp))
      fps

(** Run a spec to completion on the current domain. *)
let run ?(instr = Search.no_instr) ?observer ?(span_args = []) ~engine
    (spec : 'sched spec) (tab : Symtab.t) : Search.result =
  let fp =
    if spec.track_seen then Some (Fingerprint.create ~mode:spec.fp_mode tab)
    else None
  in
  let started = P_obs.Mclock.start () in
  let t0_us = P_obs.Mclock.now_us () in
  let t, root = init_run ?observer ~instr ~engine spec tab ~fp in
  let finish verdict =
    t.stats.elapsed_s <- P_obs.Mclock.elapsed_s started;
    flush_fp_meters t (Option.to_list fp);
    Search.emit_run_span instr ~engine ~t0_us ~stats:t.stats span_args;
    { Search.verdict; stats = t.stats }
  in
  let queue = Queue.create () in
  let dfs_stack = ref [] in
  let push n =
    match spec.frontier with Bfs -> Queue.add n queue | Dfs -> dfs_stack := n :: !dfs_stack
  in
  let is_empty () =
    match spec.frontier with Bfs -> Queue.is_empty queue | Dfs -> !dfs_stack = []
  in
  let pop () =
    match spec.frontier with
    | Bfs -> Queue.pop queue
    | Dfs -> (
      match !dfs_stack with
      | [] -> raise Queue.Empty
      | n :: rest ->
        dfs_stack := rest;
        n)
  in
  let clear () =
    Queue.clear queue;
    dfs_stack := []
  in
  let frontier_len () =
    match spec.frontier with Bfs -> Queue.length queue | Dfs -> List.length !dfs_stack
  in
  push root;
  try
    while not (is_empty ()) do
      if t.stats.states >= spec.max_states then begin
        t.stats.truncated <- true;
        clear ()
      end
      else begin
        (match t.meters with
        | None -> ()
        | Some m ->
          P_obs.Metrics.set_max m.Search.m_frontier (float_of_int (frontier_len ())));
        let node = pop () in
        if node.depth >= spec.max_depth then t.stats.truncated <- true
        else if spec.truncate_on_exhaust && node.spent >= spec.bound then
          t.stats.truncated <- true
        else List.iter (integrate t ~push) (expand ~fp t node)
      end
    done;
    finish Search.No_error
  with Found ce -> finish (Search.Error_found ce)

(** Run a spec as a level-synchronous parallel BFS: each round the frontier
    is split among [domains] workers which expand their slices with
    worker-local fingerprints (digests are canonical, so worker-local
    caches yield identical keys), then the main domain integrates all
    successors sequentially in worker order — results are byte-identical
    to {!run} on the same spec, independent of [domains]. The [max_states]
    budget is checked between levels, so the final count may overshoot.
    [spec.frontier] must be [Bfs]; observers are not supported here. *)
let run_parallel ?(instr = Search.no_instr) ?(span_args = []) ~engine ~domains
    ~spawn_threshold (spec : 'sched spec) (tab : Symtab.t) : Search.result =
  (* worker-local fingerprints, persistent across levels so the per-machine
     cache keeps paying off; worker w is the only toucher of fps.(w) within
     a level, and Domain.join orders levels *)
  let fps =
    if spec.track_seen then
      Array.init (max 1 domains) (fun _ -> Fingerprint.create ~mode:spec.fp_mode tab)
    else [||]
  in
  let fp_of w = if Array.length fps = 0 then None else Some fps.(w) in
  let expansions =
    match instr.Search.metrics with
    | None -> None
    | Some reg ->
      Some
        (P_obs.Metrics.counter reg ~labels:[ ("engine", engine) ] "checker.expansions")
  in
  let started = P_obs.Mclock.start () in
  let t0_us = P_obs.Mclock.now_us () in
  let t, root = init_run ~instr ~engine spec tab ~fp:(fp_of 0) in
  let finish verdict =
    t.stats.elapsed_s <- P_obs.Mclock.elapsed_s started;
    flush_fp_meters t (Array.to_list fps);
    Search.emit_run_span instr ~engine ~t0_us ~stats:t.stats span_args;
    { Search.verdict; stats = t.stats }
  in
  let frontier = ref [ root ] in
  try
    while !frontier <> [] do
      if t.stats.states >= spec.max_states then begin
        t.stats.truncated <- true;
        frontier := []
      end
      else begin
        let nodes = Array.of_list !frontier in
        (match t.meters with
        | None -> ()
        | Some m ->
          P_obs.Metrics.set_max m.Search.m_frontier
            (float_of_int (Array.length nodes)));
        (* small levels are cheaper sequentially: domain spawns and the
           stop-the-world minor GC synchronization only pay off once a
           level carries real work *)
        let n_workers =
          if Array.length nodes < spawn_threshold then 1
          else max 1 (min domains (Array.length nodes))
        in
        let slice w =
          let total = Array.length nodes in
          let lo = total * w / n_workers and hi = total * (w + 1) / n_workers in
          Array.to_list (Array.sub nodes lo (hi - lo))
        in
        let worker w () =
          List.concat_map (expand ?expansions ~fp:(fp_of w) t) (slice w)
        in
        let results =
          if n_workers = 1 then [ worker 0 () ]
          else begin
            let handles = List.init n_workers (fun w -> Domain.spawn (worker w)) in
            List.map Domain.join handles
          end
        in
        (* sequential merge keeps determinism *)
        let next = ref [] in
        let push n = next := n :: !next in
        List.iter (List.iter (integrate t ~push)) results;
        frontier := List.rev !next
      end
    done;
    finish Search.No_error
  with Found ce -> finish (Search.Error_found ce)
