lib/runtime/exec.ml: Array Context Fmt Fun Hashtbl List Mutex P_compile P_syntax Rt_trace Rt_value
