lib/semantics/value.ml: Ast Bool Fmt Int Mid Names P_syntax
