lib/parser/lexer.mli: P_syntax Token
