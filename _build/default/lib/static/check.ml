(** One-call front end over all static phases: symbol resolution,
    well-formedness, type checking, and the ghost-erasure discipline. *)

type result = { symtab : Symtab.t; diagnostics : Symtab.diagnostic list }

(** Run every static check. [diagnostics] is empty iff the program is
    accepted; later phases run even when earlier ones report errors, so a
    single pass reports as much as possible. *)
let run (program : P_syntax.Ast.program) : result =
  let symtab = Symtab.build program in
  let wf = Wellformed.check symtab in
  let ty = Typecheck.check symtab in
  let gh = Ghost.check symtab in
  { symtab; diagnostics = wf @ ty @ gh }

let is_ok r = r.diagnostics = []

exception Rejected of Symtab.diagnostic list

(** Like {!run} but raises {!Rejected} on any diagnostic; returns the symbol
    table of an accepted program. *)
let run_exn program =
  let r = run program in
  if is_ok r then r.symtab else raise (Rejected r.diagnostics)

let pp_diagnostics ppf ds =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Symtab.pp_diagnostic) ds

let () =
  Printexc.register_printer (function
    | Rejected ds -> Some (Fmt.str "Check.Rejected:@.%a" pp_diagnostics ds)
    | _ -> None)
