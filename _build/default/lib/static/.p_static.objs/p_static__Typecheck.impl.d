lib/static/typecheck.ml: Ast Fmt List Names P_syntax Ptype Symtab
