(** Execution traces: the observable happenings of a run, used for
    counterexample reporting, the liveness predicates of section 3.2
    ([enq], [deq], [sched]), and the d=0 runtime-equivalence tests. *)

open P_syntax

type item =
  | Created of { creator : Mid.t option; created : Mid.t; kind : Names.Machine.t }
  | Sent of { src : Mid.t; dst : Mid.t; event : Names.Event.t; payload : Value.t }
  | Dequeued of { mid : Mid.t; event : Names.Event.t; payload : Value.t }
  | Raised of { mid : Mid.t; event : Names.Event.t }
  | Entered of { mid : Mid.t; state : Names.State.t }
  | Popped of { mid : Mid.t; state : Names.State.t option }
      (** a frame was popped; [state] is the new top of the call stack *)
  | Deleted of { mid : Mid.t }
  | Faulted of { mid : Mid.t; fault : string }
      (** an injected fault fired at this machine; [fault] names the class
          (["drop"], ["dup"], ["reorder"], ["delay"], ["crash"]) *)

let pp_item ppf = function
  | Created { creator; created; kind } ->
    Fmt.pf ppf "%a creates %a : %a"
      Fmt.(option ~none:(any "<host>") Mid.pp)
      creator Mid.pp created Names.Machine.pp kind
  | Sent { src; dst; event; payload } ->
    if Value.is_null payload then
      Fmt.pf ppf "%a -- %a --> %a" Mid.pp src Names.Event.pp event Mid.pp dst
    else
      Fmt.pf ppf "%a -- %a(%a) --> %a" Mid.pp src Names.Event.pp event Value.pp payload
        Mid.pp dst
  | Dequeued { mid; event; _ } -> Fmt.pf ppf "%a dequeues %a" Mid.pp mid Names.Event.pp event
  | Raised { mid; event } -> Fmt.pf ppf "%a raises %a" Mid.pp mid Names.Event.pp event
  | Entered { mid; state } -> Fmt.pf ppf "%a enters %a" Mid.pp mid Names.State.pp state
  | Popped { mid; state } ->
    Fmt.pf ppf "%a pops to %a" Mid.pp mid
      Fmt.(option ~none:(any "<empty>") Names.State.pp)
      state
  | Deleted { mid } -> Fmt.pf ppf "%a deleted" Mid.pp mid
  | Faulted { mid; fault } -> Fmt.pf ppf "%a fault:%s" Mid.pp mid fault

type t = item list (* chronological order *)

let pp ppf (t : t) = Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_item) t

(** Projection to the externally observable communication actions (creates,
    sends, dequeues, deletes) restricted to a set of machines; used to compare
    the checker's d=0 schedule with the runtime execution. *)
let observable ?(only : Mid.Set.t option) (t : t) : item list =
  let keep mid = match only with None -> true | Some s -> Mid.Set.mem mid s in
  List.filter
    (function
      | Created { created; _ } -> keep created
      | Sent { src; dst; _ } -> keep src && keep dst
      | Dequeued { mid; _ } -> keep mid
      | Deleted { mid } -> keep mid
      | Raised _ | Entered _ | Popped _ | Faulted _ -> false)
    t
