(** Global configurations: the map [M] from machine identifiers to machine
    configurations, plus the deterministic identifier allocator. A machine
    identifier smaller than [next_id] that is absent from [machines] belongs
    to a deleted machine ([M[id] = ⊥] in the paper) — sending to it is the
    SEND-FAIL2 error. *)

type t = {
  machines : Machine.t Mid.Map.t;
  next_id : Mid.t;
  fseq : int;
      (** Fault-point counter: number of fault points consumed on the path
          to this configuration. Stays 0 when no fault plan is active, so
          fault-free state identity is unchanged. With faults on, it is part
          of state identity (two configurations that look alike but sit at
          different fault indices have different futures). *)
}

let empty = { machines = Mid.Map.empty; next_id = Mid.first; fseq = 0 }

let find t id = Mid.Map.find_opt id t.machines

let mem t id = Mid.Map.mem id t.machines

let is_deleted t id = Mid.compare id t.next_id < 0 && not (mem t id)

(* Every machine enters a configuration through this function, which makes
   it the one place that must invalidate the per-machine digest memo: a
   rebuilt machine is a [{ m with ... }] copy and would otherwise carry its
   parent's (stale) memo. After the reset, a non-empty [digest_memo] can
   only be observed on a machine physically shared with a configuration
   that was already digested — exactly the sharing guarantee the checker's
   incremental fingerprint relies on. *)
let update t id machine =
  machine.Machine.digest_memo <- "";
  machine.Machine.shape_memo <- "";
  { t with machines = Mid.Map.add id machine t.machines }

let remove t id = { t with machines = Mid.Map.remove id t.machines }

let alloc t = (t.next_id, { t with next_id = Mid.next t.next_id })

let live_ids t = Mid.Map.fold (fun id _ acc -> id :: acc) t.machines [] |> List.rev

let live_count t = Mid.Map.cardinal t.machines

let fold f t acc = Mid.Map.fold f t.machines acc

(* [update] goes through the persistent [Mid.Map.add], so every binding of
   the old map except the updated one is physically shared by the new map.
   One atomic block therefore yields a configuration whose machines are
   [==] to the parent's except for the few the block touched (the runner,
   a send target, a created machine) — the invariant the checker's
   per-machine fingerprint cache keys on. *)
let changed_machines ~before ~after =
  Mid.Map.fold
    (fun id m acc ->
      match Mid.Map.find_opt id before.machines with
      | Some m' when m' == m -> acc
      | _ -> (id, m) :: acc)
    after.machines []
  |> List.rev

let compare a b =
  match Mid.compare a.next_id b.next_id with
  | 0 -> (
    match Int.compare a.fseq b.fseq with
    | 0 -> Mid.Map.compare Machine.compare a.machines b.machines
    | c -> c)
  | c -> c

let equal a b = compare a b = 0

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.iter_bindings Mid.Map.iter (fun ppf (_, m) -> Machine.pp ppf m))
    t.machines
