(** Chang–Roberts leader election on a unidirectional ring of [n] nodes
    with distinct identities 0..n-1. Every node launches its own identity
    clockwise; a node forwards identities larger than its own, swallows
    smaller ones, and a node that receives its own identity back has won.
    The winner announces itself to a monitor that asserts (a) the winner
    is the maximum identity and (b) at most one leader is ever announced.

    The family is a first-class fault-injection subject: dropping a
    [Candidate] stalls the election (safe — nobody wins), reordering is
    absorbed by the [Boot] defer, but *duplicating* the winner's own
    candidate past the [⊕] queue makes it announce twice — the
    at-most-one-leader assertion is exactly the property an adversarial
    host refutes. *)

open P_syntax.Builder

let events =
  [ event "Candidate" ~payload:P_syntax.Ptype.Int;
    event "Elected" ~payload:P_syntax.Ptype.Int;
    event "SetNext" ~payload:P_syntax.Ptype.Machine_id;
    event "unit" ]

(* A ring node. [Boot] defers an early [Candidate] (a reordering
   adversary can push one ahead of the wiring message); the judging state
   re-raises [unit] so the node is back in [Run] for the next candidate. *)
let node_machine =
  machine "Node"
    ~vars:
      [ var_decl "myid" P_syntax.Ptype.Int;
        var_decl "mon" P_syntax.Ptype.Machine_id;
        var_decl "next" P_syntax.Ptype.Machine_id ]
    ~actions:[ action "Ignore" skip ]
    ~bindings:
      [ (* a duplicated wiring message is ignored, not a protocol error:
           the family's interesting adversarial surface is the election
           traffic, not one-shot configuration *)
        on ("Run", "SetNext") ~do_:"Ignore" ]
    [ state "Boot" ~defer:[ "Candidate" ];
      state "Wire" ~entry:(seq [ assign "next" arg; raise_ "unit" ]);
      state "Launch"
        ~entry:
          (seq [ send (v "next") "Candidate" ~payload:(v "myid"); raise_ "unit" ]);
      state "Run" ~entry:skip;
      state "Judge"
        ~entry:
          (seq
             [ if_
                 (arg > v "myid")
                 (send (v "next") "Candidate" ~payload:arg)
                 (when_
                    (arg == v "myid")
                    (send (v "mon") "Elected" ~payload:(v "myid")));
               raise_ "unit" ]) ]
    ~steps:
      [ ("Boot", "SetNext", "Wire");
        ("Wire", "unit", "Launch");
        ("Launch", "unit", "Run");
        ("Run", "Candidate", "Judge");
        ("Judge", "unit", "Run") ]

(* The election observer: the winner must be the maximum identity, and
   there must never be a second announcement. *)
let monitor_machine =
  machine "Monitor"
    ~vars:[ var_decl "expect" P_syntax.Ptype.Int; var_decl "winners" P_syntax.Ptype.Int ]
    [ state "Wait" ~entry:skip;
      state "Count"
        ~entry:
          (seq
             [ assert_ (arg == v "expect");
               assign "winners" (v "winners" + int 1);
               assert_ (v "winners" <= int 1);
               raise_ "unit" ]) ]
    ~steps:[ ("Wait", "Elected", "Count"); ("Count", "unit", "Wait") ]

let node_name i = Fmt.str "nd%d" i

(** The starter wires [n] nodes into a ring (node [i]'s successor is
    [(i+1) mod n]) under one monitor expecting winner [n-1]. *)
let starter ~n =
  let make =
    List.init n (fun i ->
        new_ (node_name i) "Node" [ ("myid", int i); ("mon", v "mon") ])
  in
  let wire =
    List.init n (fun i ->
        send
          (v (node_name i))
          "SetNext"
          ~payload:(v (node_name (Stdlib.( mod ) (Stdlib.( + ) i 1) n))))
  in
  machine "Starter"
    ~vars:
      (var_decl "mon" P_syntax.Ptype.Machine_id
      :: List.init n (fun i -> var_decl (node_name i) P_syntax.Ptype.Machine_id))
    [ state "Init"
        ~entry:
          (seq
             ((new_ "mon" "Monitor" [ ("expect", int (Stdlib.( - ) n 1)); ("winners", int 0) ]
              :: make)
             @ wire)) ]

(** Closed leader-election program over a ring of [n] (default 3) nodes. *)
let program ?(n = 3) () =
  if Stdlib.( < ) n 2 then invalid_arg "Leader_ring.program: n must be at least 2";
  program ~events ~machines:[ starter ~n; node_machine; monitor_machine ] "Starter"

(** Seeded bug: the comparison is inverted — nodes forward *smaller*
    identities and swallow larger ones, so the minimum identity survives
    the lap and the monitor's winner-is-maximum assertion fails. *)
let buggy_program ?(n = 3) () =
  let p = program ~n () in
  { p with
    P_syntax.Ast.machines =
      List.map
        (fun (m : P_syntax.Ast.machine) ->
          if P_syntax.Names.Machine.to_string m.machine_name = "Node" then
            { m with
              P_syntax.Ast.states =
                List.map
                  (fun (st : P_syntax.Ast.state) ->
                    if P_syntax.Names.State.to_string st.state_name = "Judge" then
                      state "Judge"
                        ~entry:
                          (seq
                             [ if_
                                 (* BUG: < instead of >; the minimum wins *)
                                 (arg < v "myid")
                                 (send (v "next") "Candidate" ~payload:arg)
                                 (when_
                                    (arg == v "myid")
                                    (send (v "mon") "Elected" ~payload:(v "myid")));
                               raise_ "unit" ])
                    else st)
                  m.P_syntax.Ast.states }
          else m)
        p.P_syntax.Ast.machines }
