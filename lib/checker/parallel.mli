(** Multicore state-space exploration: {!Engine.run_parallel} over the
    delay-bounded spec — a work-stealing search on OCaml 5 domains, with
    per-worker Chase–Lev deques and a sharded seen set (the paper's case
    study mentions "using multicores to scale the state exploration").

    Deterministic across [domains]: the verdict and the (states,
    transitions) pair are independent of the domain count (the test suite
    checks this at domains 1/2/4/8); verdicts and state counts also agree
    exactly with {!Delay_bounded.explore} on the same bounds, and a
    counterexample is always the sequential engine's. Only wall-clock time
    changes with [domains], and only on machines with more than one
    core. *)

(** Why a requested domain count was refused. [recommended] is what
    [Domain.recommended_domain_count] reported (the core count);
    [hard_limit] is the OCaml runtime's cap on concurrent domains. *)
type domains_error = { requested : int; recommended : int; hard_limit : int }

exception Invalid_domains of domains_error
(** Raised by {!explore} (and {!Random_walk.run_portfolio}) instead of the
    bare [Failure] the OCaml runtime would raise on an impossible spawn. *)

val pp_domains_error : domains_error Fmt.t

val validate_domains :
  ?hard:bool -> ?recommended:int -> int -> (int, domains_error) result
(** [validate_domains n] checks a requested domain count. With the default
    [hard:false] it also errors when [n] exceeds [recommended] (default
    [Domain.recommended_domain_count ()]) — the [pc] CLI reports that case
    as a warning on [--domains]/[--portfolio]. With [hard:true] only the
    impossible counts are errors ([n < 1] or beyond the runtime's hard
    limit, where a bare [Failure] used to escape) — the check the library
    and the CLI enforce, so tests and benchmarks may still deliberately
    oversubscribe a small machine. *)

val explore :
  ?max_states:int ->
  ?domains:int ->
  ?spawn_threshold:int ->
  ?fingerprint:Fingerprint.mode ->
  ?store:State_store.kind ->
  ?store_capacity:int ->
  ?reduce:Reduce.t ->
  ?faults:P_semantics.Fault.plan ->
  ?instr:Search.instr ->
  delay_bound:int ->
  P_static.Symtab.t ->
  Search.result
(** [explore ~delay_bound tab] across [domains] workers (default 4).
    Raises {!Invalid_domains} when [domains] is impossible ([< 1] or past
    the runtime's hard limit). [spawn_threshold] is accepted for
    compatibility with the retired level-synchronous engine and ignored:
    the work-stealing engine has no per-level spawn decision. [max_states]
    is checked at claim time; a truncated run may overshoot slightly and
    its counts may vary with [domains] (non-truncated runs are exactly
    deterministic). [fingerprint] selects the state-key strategy (default
    [Incremental]); each worker keeps its own per-machine digest cache for
    the whole run. [store] picks the seen-set representation (default
    [Exact]); with [Compact] the workers claim states by lock-free CAS on
    an off-heap arena — no shard mutexes, no [shard_lock] profile phase —
    while keeping the same min-spent merge rule and the same
    domain-count-independent triple. [reduce] (default {!Reduce.none})
    applies the same sleep-set POR / symmetry canonicalization as the
    sequential engine; because the sleep set is part of the state key,
    reduced runs keep the full determinism contract, and a counterexample
    is still re-derived sequentially under the same reduction.

    With [instr] metrics on, workers additionally count
    [checker.expansions], [checker.steals], [checker.steal_attempts],
    [checker.steal_retries], and [checker.shard_contention] (labelled
    [engine=parallel]) from inside their domains — each into its own
    registry shard, so instrumentation adds no cross-domain contention;
    the merged [checker.expansions] total equals this engine's transition
    count on clean programs. With an [instr] profiler and telemetry on,
    workers record per-domain expand / steal / barrier_wait / shard_lock
    spans and worker 0 drives the states/s sampler (see
    {!P_obs.Profile} and {!P_obs.Telemetry}). *)
