lib/static/wellformed.mli: Symtab
