lib/compile/c_emit.mli: Tables
