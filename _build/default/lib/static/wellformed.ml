(** Structural well-formedness of a P program.

    Together with the duplicate detection performed by {!Symtab.build}, this
    module implements check (1) of the paper's type system (section 3.3):
    identifiers are unique and every reference resolves. It additionally
    enforces the Figure 5 assumption that exit statements contain no [raise],
    [return], [leave], or [call] (the paper notes its implementation relaxes
    this; we keep the formal rules' restriction and reject such programs),
    and that only ghost machines use the nondeterministic [*] expression
    (check (2): statements of real machines are deterministic). *)

open P_syntax

let errs : Symtab.diagnostic list ref -> Loc.t -> ('a, Format.formatter, unit, unit) format4 -> 'a =
 fun acc loc fmt -> Fmt.kstr (fun dmsg -> acc := { Symtab.dloc = loc; dmsg } :: !acc) fmt

let check_event_known tab acc loc event =
  if Symtab.event_decl tab event = None then
    errs acc loc "unknown event %a" Names.Event.pp event

let check_state_known (mi : Symtab.machine_info) acc loc state =
  if Symtab.state_info mi state = None then
    errs acc loc "unknown state %a in machine %a" Names.State.pp state Names.Machine.pp
      mi.m_ast.machine_name

let rec check_expr tab (mi : Symtab.machine_info) acc (expr : Ast.expr) =
  match expr.e with
  | Ast.Var x ->
    if Symtab.var_decl mi x = None then
      errs acc expr.eloc "unknown variable %a in machine %a" Names.Var.pp x
        Names.Machine.pp mi.m_ast.machine_name
  | Ast.Event_lit e -> check_event_known tab acc expr.eloc e
  | Ast.Nondet ->
    if not mi.m_ast.machine_ghost then
      errs acc expr.eloc
        "nondeterministic '*' is only allowed in ghost machines (machine %a is real)"
        Names.Machine.pp mi.m_ast.machine_name
  | Ast.Foreign_call (f, args) ->
    (match Symtab.foreign_decl mi f with
    | None ->
      errs acc expr.eloc "unknown foreign function %a in machine %a" Names.Foreign.pp f
        Names.Machine.pp mi.m_ast.machine_name
    | Some fd ->
      if List.length fd.foreign_params <> List.length args then
        errs acc expr.eloc "foreign function %a expects %d argument(s), got %d"
          Names.Foreign.pp f
          (List.length fd.foreign_params)
          (List.length args));
    List.iter (check_expr tab mi acc) args
  | Ast.Unop (_, a) -> check_expr tab mi acc a
  | Ast.Binop (_, a, b) ->
    check_expr tab mi acc a;
    check_expr tab mi acc b
  | Ast.This | Ast.Msg | Ast.Arg | Ast.Null | Ast.Bool_lit _ | Ast.Int_lit _ -> ()

let check_new tab (mi : Symtab.machine_info) acc loc target inits =
  match Symtab.machine_info tab target with
  | None -> errs acc loc "new of unknown machine %a" Names.Machine.pp target
  | Some target_mi ->
    List.iter
      (fun (x, e) ->
        (if Symtab.var_decl target_mi x = None then
           errs acc loc "initializer names unknown variable %a of machine %a"
             Names.Var.pp x Names.Machine.pp target);
        check_expr tab mi acc e)
      inits

let rec check_stmt tab (mi : Symtab.machine_info) acc ~in_exit (stmt : Ast.stmt) =
  let check_no_control what =
    if in_exit then
      errs acc stmt.sloc "%s is not allowed inside an exit statement" what
  in
  List.iter (check_expr tab mi acc) (Ast.stmt_exprs stmt);
  match stmt.s with
  | Ast.Seq (a, b) ->
    check_stmt tab mi acc ~in_exit a;
    check_stmt tab mi acc ~in_exit b
  | Ast.If (_, t, f) ->
    check_stmt tab mi acc ~in_exit t;
    check_stmt tab mi acc ~in_exit f
  | Ast.While (_, body) -> check_stmt tab mi acc ~in_exit body
  | Ast.New (x, target, inits) ->
    (if Symtab.var_decl mi x = None then
       errs acc stmt.sloc "unknown variable %a in machine %a" Names.Var.pp x
         Names.Machine.pp mi.m_ast.machine_name);
    check_new tab mi acc stmt.sloc target inits
  | Ast.Assign (x, _) ->
    if Symtab.var_decl mi x = None then
      errs acc stmt.sloc "unknown variable %a in machine %a" Names.Var.pp x
        Names.Machine.pp mi.m_ast.machine_name
  | Ast.Send (_, ev, _) -> check_event_known tab acc stmt.sloc ev
  | Ast.Raise (ev, _) ->
    check_no_control "raise";
    check_event_known tab acc stmt.sloc ev
  | Ast.Return -> check_no_control "return"
  | Ast.Leave -> check_no_control "leave"
  | Ast.Call_state n ->
    check_no_control "call";
    check_state_known mi acc stmt.sloc n
  | Ast.Foreign_stmt (f, args) -> (
    match Symtab.foreign_decl mi f with
    | None ->
      errs acc stmt.sloc "unknown foreign function %a in machine %a" Names.Foreign.pp f
        Names.Machine.pp mi.m_ast.machine_name
    | Some fd ->
      if List.length fd.foreign_params <> List.length args then
        errs acc stmt.sloc "foreign function %a expects %d argument(s), got %d"
          Names.Foreign.pp f
          (List.length fd.foreign_params)
          (List.length args))
  | Ast.Skip | Ast.Delete | Ast.Assert _ -> ()

let check_machine tab acc (mi : Symtab.machine_info) =
  let m = mi.m_ast in
  List.iter
    (fun (st : Ast.state) ->
      List.iter (check_event_known tab acc st.state_loc) st.deferred;
      List.iter (check_event_known tab acc st.state_loc) st.postponed;
      check_stmt tab mi acc ~in_exit:false st.entry;
      check_stmt tab mi acc ~in_exit:true st.exit)
    m.states;
  List.iter
    (fun (ad : Ast.action_decl) -> check_stmt tab mi acc ~in_exit:false ad.action_body)
    m.actions;
  List.iter
    (fun (tr : Ast.transition) ->
      check_state_known mi acc tr.tr_loc tr.tr_source;
      check_state_known mi acc tr.tr_loc tr.tr_target;
      check_event_known tab acc tr.tr_loc tr.tr_event)
    (m.steps @ m.calls);
  List.iter
    (fun (bd : Ast.binding) ->
      check_state_known mi acc bd.bd_loc bd.bd_state;
      check_event_known tab acc bd.bd_loc bd.bd_event;
      if Symtab.action_stmt mi bd.bd_action = None then
        errs acc bd.bd_loc "binding names unknown action %a" Names.Action.pp
          bd.bd_action)
    m.bindings

(* The parser resolves identifiers in expression position against the event
   namespace first, so an event name reused as a variable would silently
   change meaning; reject the collision outright (the paper requires global
   uniqueness of identifiers anyway). *)
let check_namespace_collisions tab acc =
  Names.Machine.Tbl.iter
    (fun _ (mi : Symtab.machine_info) ->
      Names.Var.Tbl.iter
        (fun v (vd : Ast.var_decl) ->
          if Names.Event.Tbl.mem tab.Symtab.events (Names.Event.of_string (Names.Var.to_string v))
          then
            errs acc vd.var_loc "variable %a collides with an event of the same name"
              Names.Var.pp v)
        mi.m_vars)
    tab.Symtab.machines

let check_main tab acc =
  match Symtab.machine_info tab tab.Symtab.program.main with
  | None -> () (* already reported by Symtab.build *)
  | Some mi ->
    List.iter
      (fun (x, (e : Ast.expr)) ->
        (if Symtab.var_decl mi x = None then
           errs acc e.eloc "initializer names unknown variable %a of machine %a"
             Names.Var.pp x Names.Machine.pp tab.Symtab.program.main);
        match e.e with
        | Ast.Null | Ast.Bool_lit _ | Ast.Int_lit _ | Ast.Event_lit _ -> ()
        | _ ->
          errs acc e.eloc
            "initializers of the main machine must be literal constants")
      tab.Symtab.program.main_init

(** Run all well-formedness checks. Returns diagnostics oldest-first,
    including those collected by {!Symtab.build}. *)
let check (tab : Symtab.t) : Symtab.diagnostic list =
  let acc = ref [] in
  Names.Machine.Tbl.iter (fun _ mi -> check_machine tab acc mi) tab.machines;
  check_namespace_collisions tab acc;
  check_main tab acc;
  tab.diagnostics @ List.rev !acc
