(* Property-based differential harness: ~200 seeded random P programs per
   runtest, each cross-checked three ways —

   - [Delay_bounded.explore] (the sequential reference) vs the
     work-stealing [Parallel.explore] at domains=1 and domains=N: verdicts
     and state counts must agree, the parallel transition counts must be
     identical to each other and at most the sequential one, and any
     parallel counterexample must be byte-identical to the sequential
     engine's (the deterministic re-derivation contract);
   - any counterexample's schedule through [Differential.run]: the
     checker's interpreter and the compiled table-driven runtime must fail
     in the same atomic block.

   Programs come from [Test_properties.gen_program_with] in four seeded
   families: {ghost-free, ghost-bearing} x {clean-by-construction,
   possibly-failing asserts} — the risky families are what exercises the
   counterexample paths. Every failure message leads with the program's
   seed; rerunning the harness reproduces it exactly (generation is keyed
   on the seed alone).

   N defaults to 4 and is overridden by PCAML_TEST_DOMAINS — the CI matrix
   runs the suite at 1 and 4.

   PCAML_TEST_STORE adds a second axis over the seen-set representation:

   - [compact] re-runs all three explorations with the off-heap
     fingerprint store and demands (verdict, states, transitions) triples
     and counterexample schedules *byte-identical* to the exact store's —
     hash compaction must be a pure representation change at these sizes
     (the 47-bit tag birthday bound at 4000 states is ~6e-8);
   - [bitstate] re-runs the sequential exploration with the supertrace bit
     array, which may legitimately omit states — but never silently: it
     must explore at most as many states as exact, any error it reports
     must also be one exact reports, and whenever it is more optimistic
     than exact (fewer states, or a missed error) its summary must flag
     the loss (lossy_dups > 0).

   PCAML_TEST_SCHED=effects adds a third axis over the runtime driver:
   every generated program additionally runs under both the historical
   nested run-to-completion driver and the Causal effects scheduler,
   which must produce byte-identical observable traces (machine-visible
   event orders) and identical error outcomes.

   PCAML_TEST_REDUCE={por,symmetry,full} adds a fourth axis over the
   state-space reduction: the sequential and parallel explorations re-run
   with the reduction on and must report the same verdict kind as the
   unreduced reference, never more states (a pruned successor is never
   claimed), agree with each other exactly, and produce counterexamples
   that still replay through the compiled runtime. *)

open P_checker

let programs_per_family = 50
let base_seed = 0x5eed

(* The parallel engine's second domain count (the first is always 1). *)
let domains_under_test =
  match Option.bind (Sys.getenv_opt "PCAML_TEST_DOMAINS") int_of_string_opt with
  | Some n when n >= 1 && n <= 128 -> n
  | Some _ | None -> 4

(* The seen-set representation under differential test (the exact store
   always runs as the reference). *)
let store_under_test =
  match Sys.getenv_opt "PCAML_TEST_STORE" with
  | None | Some "" -> State_store.Exact
  | Some s -> (
    match State_store.kind_of_string s with
    | Ok k -> k
    | Error e -> failwith ("PCAML_TEST_STORE: " ^ e))

(* The runtime-driver axis: nested threads driver vs Causal effects
   scheduler. Off by default (the default runtest already exercises the
   nested driver through Differential); CI enables it explicitly. *)
let sched_effects_under_test =
  match Sys.getenv_opt "PCAML_TEST_SCHED" with
  | Some "effects" -> true
  | Some _ | None -> false

(* The reduction axis: [none] is always the reference run; any other mode
   re-runs the explorations reduced and compares. *)
let reduce_under_test =
  match Sys.getenv_opt "PCAML_TEST_REDUCE" with
  | None | Some "" -> None
  | Some s -> (
    match Reduce.of_string s with
    | Ok r when Reduce.is_none r -> None
    | Ok r -> Some r
    | Error e -> failwith ("PCAML_TEST_REDUCE: " ^ e))

(* The fault-injection axis: every generated program re-explores under a
   seeded random fault plan, and the determinism contract must hold —
   repeated runs bit-identical, domain-count invariant, counterexamples
   replayable through the compiled runtime under the same plan. *)
let faults_under_test =
  match Sys.getenv_opt "PCAML_TEST_FAULTS" with
  | None | Some "" | Some "0" | Some "none" -> false
  | Some _ -> true

let gen_one ~ghost ~risky seed : P_syntax.Ast.program =
  let rand =
    Random.State.make
      [| base_seed; seed; (if ghost then 1 else 0); (if risky then 1 else 0) |]
  in
  QCheck2.Gen.generate1 ~rand (Test_properties.gen_program_with ~ghost ~risky ())

let failf seed fmt = Alcotest.failf ("seed %d: " ^^ fmt) seed

let verdict_kind (r : Search.result) =
  match r.verdict with Search.Error_found _ -> "error" | Search.No_error -> "clean"

let ce_of (r : Search.result) =
  match r.verdict with Search.Error_found ce -> Some ce | Search.No_error -> None

(* Run a compiled program under one of the two runtime drivers, collecting
   the raw trace (stricter than [Rt_trace.observable]: both drivers emit at
   the same points, so internal items must line up too). The cutoff bounds
   programs that circulate forever; both drivers abort at the same item
   when their schedules agree. *)
type run_outcome = Run_completed | Run_cutoff | Run_failed of string

let runtime_trace_cutoff = 10_000

let runtime_run ~effects driver main =
  let exception Enough in
  let items = ref [] in
  let count = ref 0 in
  let hook it =
    items := Fmt.str "%a" P_runtime.Rt_trace.pp_item it :: !items;
    incr count;
    if !count > runtime_trace_cutoff then raise Enough
  in
  let rt, create_machine =
    if effects then
      let s = P_runtime.Sched.create ~policy:P_runtime.Sched.Causal driver in
      ( P_runtime.Sched.exec s,
        fun m -> ignore (P_runtime.Sched.create_machine s m : int) )
    else
      let rt = P_runtime.Api.create driver in
      (rt, fun m -> ignore (P_runtime.Api.create_machine rt m : int))
  in
  P_runtime.Api.set_trace_hook rt (Some hook);
  let outcome =
    match create_machine main with
    | () -> Run_completed
    | exception Enough -> Run_cutoff
    | exception P_runtime.Exec.Runtime_error m -> Run_failed m
  in
  (outcome, List.rev !items)

let outcome_str = function
  | Run_completed -> "completed"
  | Run_cutoff -> "cutoff"
  | Run_failed m -> "error: " ^ m

let check_sched_axis seed (p : P_syntax.Ast.program) =
  let driver = (P_compile.Compile.compile p).P_compile.Compile.driver in
  let main = P_syntax.Names.Machine.to_string p.main in
  let t_out, t_items = runtime_run ~effects:false driver main in
  let e_out, e_items = runtime_run ~effects:true driver main in
  if outcome_str t_out <> outcome_str e_out then
    failf seed "sched axis: threads outcome %S <> effects outcome %S"
      (outcome_str t_out) (outcome_str e_out);
  if t_items <> e_items then begin
    let rec first i = function
      | [], [] -> failf seed "sched axis: traces differ (unlocated)"
      | a :: _, [] -> failf seed "sched axis: item %d %S only under threads" i a
      | [], b :: _ -> failf seed "sched axis: item %d %S only under effects" i b
      | a :: ta, b :: tb ->
        if a <> b then
          failf seed "sched axis: item %d: threads %S <> effects %S" i a b
        else first (Stdlib.( + ) i 1) (ta, tb)
    in
    first 0 (t_items, e_items)
  end

let check_reduce_axis seed tab (seq : Search.result) reduce =
  let red = Delay_bounded.explore ~delay_bound:1 ~max_states:4_000 ~reduce tab in
  let redp =
    Parallel.explore ~domains:domains_under_test ~delay_bound:1
      ~max_states:4_000 ~reduce tab
  in
  if verdict_kind red <> verdict_kind seq then
    failf seed "reduce %a: verdict %s <> unreduced %s" Reduce.pp reduce
      (verdict_kind red) (verdict_kind seq);
  if verdict_kind redp <> verdict_kind red then
    failf seed "reduce %a: parallel verdict %s <> sequential %s" Reduce.pp
      reduce (verdict_kind redp) (verdict_kind red);
  if red.stats.states <> redp.stats.states then
    failf seed "reduce %a: parallel states %d <> sequential %d" Reduce.pp
      reduce redp.stats.states red.stats.states;
  if not (seq.stats.truncated || red.stats.truncated) then begin
    if red.stats.states > seq.stats.states then
      failf seed "reduce %a explored %d states, unreduced only %d" Reduce.pp
        reduce red.stats.states seq.stats.states
  end;
  match ce_of red with
  | None -> ()
  | Some ce -> (
    match ce.error.kind with
    | P_semantics.Errors.Livelock | P_semantics.Errors.Fuel_exhausted -> ()
    | _ -> (
      match Differential.run tab ce.schedule with
      | Error e -> failf seed "reduce %a: differential setup failed: %s" Reduce.pp reduce e
      | Ok (Differential.Agree { verdict = Differential.Agree_error _; _ }) -> ()
      | Ok o ->
        failf seed "reduce %a: counterexample replay: %a" Reduce.pp reduce
          Differential.pp_outcome o))

(* The seeded fault-schedule generator: a random plan whose rates and
   fault seed are a pure function of the program seed, so a failing seed
   reproduces the whole (program, plan) pair. *)
let gen_fault_plan seed =
  let rand = Random.State.make [| base_seed; seed; 0xFA17 |] in
  let rate bound = Random.State.int rand bound in
  P_semantics.Fault.with_seed
    (Random.State.int rand 1_000_000)
    { P_semantics.Fault.none with
      drop = rate 250;
      dup = rate 250;
      reorder = rate 250;
      delay = rate 150;
      crash = rate 80 }

let check_faults_axis seed tab =
  let faults = gen_fault_plan seed in
  let max_states = 4_000 in
  let digest (r : Search.result) =
    (verdict_kind r, r.stats.states, r.stats.transitions, r.stats.faults)
  in
  let f1 = Delay_bounded.explore ~delay_bound:1 ~max_states ~faults tab in
  let f2 = Delay_bounded.explore ~delay_bound:1 ~max_states ~faults tab in
  if digest f1 <> digest f2 then
    failf seed "fault axis: repeated fault-injected search diverged";
  let fp =
    Parallel.explore ~domains:domains_under_test ~delay_bound:1 ~max_states
      ~faults tab
  in
  if verdict_kind fp <> verdict_kind f1 then
    failf seed "fault axis: parallel(%d) verdict %s <> sequential %s"
      domains_under_test (verdict_kind fp) (verdict_kind f1);
  if not (f1.stats.truncated || fp.stats.truncated) then begin
    if fp.stats.states <> f1.stats.states then
      failf seed "fault axis: parallel(%d) states %d <> sequential %d"
        domains_under_test fp.stats.states f1.stats.states;
    match (ce_of f1, ce_of fp) with
    | Some sce, Some pce ->
      if pce.schedule <> sce.schedule then
        failf seed "fault axis: parallel(%d) ce schedule differs from sequential"
          domains_under_test
    | None, None -> ()
    | _ -> ()
  end;
  match ce_of f1 with
  | None -> ()
  | Some ce -> (
    match ce.error.kind with
    | P_semantics.Errors.Livelock | P_semantics.Errors.Fuel_exhausted -> ()
    | _ -> (
      match Differential.run ~faults tab ce.schedule with
      | Error e -> failf seed "fault axis: differential setup failed: %s" e
      | Ok (Differential.Agree { verdict = Differential.Agree_error _; _ }) -> ()
      | Ok o ->
        failf seed "fault axis: counterexample replay: %a" Differential.pp_outcome
          o))

let check_generated seed (p : P_syntax.Ast.program) =
  let tab =
    match P_static.Check.run p with
    | { diagnostics = []; symtab } -> symtab
    | { diagnostics; _ } ->
      failf seed "generated program not statically clean: %a"
        P_static.Check.pp_diagnostics diagnostics
  in
  if sched_effects_under_test then check_sched_axis seed p;
  let max_states = 4_000 in
  let seq = Delay_bounded.explore ~delay_bound:1 ~max_states tab in
  let par1 = Parallel.explore ~domains:1 ~delay_bound:1 ~max_states tab in
  let parn =
    Parallel.explore ~domains:domains_under_test ~delay_bound:1 ~max_states tab
  in
  (* truncated runs are excluded from the count comparisons: the engines
     check the budget at different granularities (documented) *)
  if
    not
      (seq.stats.truncated || par1.stats.truncated || parn.stats.truncated)
  then begin
    if seq.stats.states <> par1.stats.states then
      failf seed "states: sequential %d <> parallel(1) %d" seq.stats.states
        par1.stats.states;
    if par1.stats.states <> parn.stats.states then
      failf seed "states: parallel(1) %d <> parallel(%d) %d" par1.stats.states
        domains_under_test parn.stats.states;
    if par1.stats.transitions <> parn.stats.transitions then
      failf seed "transitions: parallel(1) %d <> parallel(%d) %d"
        par1.stats.transitions domains_under_test parn.stats.transitions;
    if parn.stats.transitions > seq.stats.transitions then
      failf seed "transitions: parallel %d > sequential %d"
        parn.stats.transitions seq.stats.transitions;
    if verdict_kind seq <> verdict_kind par1 || verdict_kind par1 <> verdict_kind parn
    then
      failf seed "verdicts disagree: seq=%s par1=%s par%d=%s" (verdict_kind seq)
        (verdict_kind par1) domains_under_test (verdict_kind parn);
    match (ce_of seq, ce_of par1, ce_of parn) with
    | Some sce, Some ce1, Some cen ->
      (* parallel counterexamples are re-derived sequentially: identical to
         the sequential engine's at every domain count *)
      List.iter
        (fun (d, (ce : Search.counterexample)) ->
          if ce.depth <> sce.depth then
            failf seed "parallel(%d) ce depth %d <> sequential %d" d ce.depth
              sce.depth;
          if ce.error <> sce.error then
            failf seed "parallel(%d) ce error differs from sequential" d;
          if ce.schedule <> sce.schedule then
            failf seed "parallel(%d) ce schedule differs from sequential" d)
        [ (1, ce1); (domains_under_test, cen) ];
      (* interpreter vs compiled runtime on the failing schedule — except
         for livelock/fuel errors, which only the interpreter's cycle
         detector can produce: the table-driven runtime would execute the
         detected cycle of private operations forever *)
      (match sce.error.kind with
      | P_semantics.Errors.Livelock | P_semantics.Errors.Fuel_exhausted -> ()
      | _ -> (
        match Differential.run tab sce.schedule with
        | Error e -> failf seed "differential setup failed: %s" e
        | Ok (Differential.Agree { verdict = Differential.Agree_error _; _ }) -> ()
        | Ok o -> failf seed "differential replay: %a" Differential.pp_outcome o))
    | None, None, None -> ()
    | _ -> () (* verdict kinds already compared above *)
  end;
  if faults_under_test then check_faults_axis seed tab;
  (match reduce_under_test with
  | None -> ()
  | Some reduce -> check_reduce_axis seed tab seq reduce);
  match store_under_test with
  | State_store.Exact -> ()
  | State_store.Compact ->
    (* hash compaction is a representation change only: every driver must
       reproduce its exact-store run byte for byte *)
    let cseq =
      Delay_bounded.explore ~store:State_store.Compact ~delay_bound:1 ~max_states
        tab
    in
    let cpar1 =
      Parallel.explore ~store:State_store.Compact ~domains:1 ~delay_bound:1
        ~max_states tab
    in
    let cparn =
      Parallel.explore ~store:State_store.Compact ~domains:domains_under_test
        ~delay_bound:1 ~max_states tab
    in
    List.iter
      (fun (driver, (exact : Search.result), (compact : Search.result)) ->
        if exact.stats.truncated <> compact.stats.truncated then
          failf seed "%s: compact truncated %b <> exact %b" driver
            compact.stats.truncated exact.stats.truncated;
        if not (exact.stats.truncated || compact.stats.truncated) then begin
          if compact.stats.states <> exact.stats.states then
            failf seed "%s: compact states %d <> exact %d" driver
              compact.stats.states exact.stats.states;
          if compact.stats.transitions <> exact.stats.transitions then
            failf seed "%s: compact transitions %d <> exact %d" driver
              compact.stats.transitions exact.stats.transitions
        end;
        if verdict_kind exact <> verdict_kind compact then
          failf seed "%s: compact verdict %s <> exact %s" driver
            (verdict_kind compact) (verdict_kind exact);
        match (ce_of exact, ce_of compact) with
        | Some e, Some c ->
          if c.depth <> e.depth then
            failf seed "%s: compact ce depth %d <> exact %d" driver c.depth
              e.depth;
          if c.error <> e.error then
            failf seed "%s: compact ce error differs from exact" driver;
          if c.schedule <> e.schedule then
            failf seed "%s: compact ce schedule differs from exact" driver
        | None, None -> ()
        | _ -> ())
      [ ("sequential", seq, cseq);
        ("parallel(1)", par1, cpar1);
        (Fmt.str "parallel(%d)" domains_under_test, parn, cparn) ]
  | State_store.Bitstate ->
    (* supertrace may omit states, never silently: at most exact's state
       count, any error it finds is one exact's superset also contains,
       and any optimism (fewer states, or exact's error missed) must be
       flagged by a nonzero lossy-merge count *)
    let bseq =
      Delay_bounded.explore ~store:State_store.Bitstate ~delay_bound:1
        ~max_states tab
    in
    let lossy =
      match bseq.stats.store with
      | Some st -> st.State_store.s_lossy_dups
      | None -> failf seed "bitstate run carries no store summary"
    in
    if not (seq.stats.truncated || bseq.stats.truncated) then begin
      if bseq.stats.states > seq.stats.states then
        failf seed "bitstate explored %d states, exact only %d"
          bseq.stats.states seq.stats.states;
      if bseq.stats.states < seq.stats.states && lossy = 0 then
        failf seed "bitstate omitted %d states without flagging a lossy merge"
          (seq.stats.states - bseq.stats.states);
      match (ce_of seq, ce_of bseq) with
      | Some _, None when lossy = 0 ->
        failf seed "bitstate missed the error without flagging a lossy merge"
      | None, Some _ ->
        failf seed "bitstate reports an error the exact store does not"
      | _ -> ()
    end

let check_program ~ghost ~risky seed = check_generated seed (gen_one ~ghost ~risky seed)

let family_case name ~ghost ~risky first_seed =
  Alcotest.test_case name `Quick (fun () ->
      for i = 0 to programs_per_family - 1 do
        check_program ~ghost ~risky (first_seed + i)
      done)

(* The multi-machine topology families: seeded rings and supervision
   chains (with restart handlers) from [Test_properties], run through the
   same differential gauntlet — these are the programs whose cross-machine
   traffic the fault axis has something to bite on. *)
let topology_programs = 20

let gen_topology gen ~risky ~tag seed : P_syntax.Ast.program =
  let rand =
    Random.State.make [| base_seed; seed; tag; (if risky then 1 else 0) |]
  in
  QCheck2.Gen.generate1 ~rand ((gen ?risky:(Some risky) () : _ QCheck2.Gen.t))

let topology_case name gen ~risky ~tag first_seed =
  Alcotest.test_case name `Quick (fun () ->
      for i = 0 to topology_programs - 1 do
        let seed = first_seed + i in
        check_generated seed (gen_topology gen ~risky ~tag seed)
      done)

let suite =
  [ family_case "ghost-free clean" ~ghost:false ~risky:false 1_000;
    family_case "ghost-free risky" ~ghost:false ~risky:true 2_000;
    family_case "ghost-bearing clean" ~ghost:true ~risky:false 3_000;
    family_case "ghost-bearing risky" ~ghost:true ~risky:true 4_000;
    topology_case "token rings clean" Test_properties.gen_ring_program
      ~risky:false ~tag:0x21 5_000;
    topology_case "token rings risky" Test_properties.gen_ring_program
      ~risky:true ~tag:0x21 6_000;
    topology_case "spawn chains clean" Test_properties.gen_spawn_chain_program
      ~risky:false ~tag:0x22 7_000;
    topology_case "spawn chains risky" Test_properties.gen_spawn_chain_program
      ~risky:true ~tag:0x22 8_000 ]
