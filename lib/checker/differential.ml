(** Differential replay: drive one recorded schedule through BOTH
    implementations of the operational semantics — the checker's
    interpreter ({!P_semantics.Step}) and the compiled table-driven
    runtime ({!P_compile} + {!P_runtime.Exec} in stepped mode) — and
    cross-check them after every atomic block.

    The paper's central promise is that the checker and the generated
    code execute the same semantics; this module tests that promise on
    concrete runs. The runtime normally erases ghost machines before
    compiling, so the comparison uses {!P_compile.Compile.compile_full}
    tables (ghosts kept, [*] lowered to [CNondet]) and
    {!P_runtime.Exec.step_block}, which stops at the same scheduling
    points the interpreter yields at. Machine identifiers align by
    construction: both layers allocate densely in creation order, and a
    replayed schedule fixes the creation order.

    Outcomes are compared by {e kind} (progress / blocked / terminated /
    error) because the two layers render error messages differently; the
    full machine states — control stack, store, queue, [msg]/[arg] — are
    compared structurally. *)

module Step = P_semantics.Step
module Config = P_semantics.Config
module Machine = P_semantics.Machine
module Equeue = P_semantics.Equeue
module Value = P_semantics.Value
module Errors = P_semantics.Errors
module Mid = P_semantics.Mid
module Names = P_syntax.Names
module Tables = P_compile.Tables
module Exec = P_runtime.Exec
module Context = P_runtime.Context
module Rt_value = P_runtime.Rt_value

type verdict =
  | Agree_clean  (** the whole schedule ran; every intermediate state matched *)
  | Agree_error of string
      (** both layers hit an error configuration in the same block; the
          payload is the interpreter's rendering *)

type outcome =
  | Agree of { blocks : int; verdict : verdict }
  | Mismatch of { step : int; reason : string }
      (** the layers disagreed after (or in) atomic block [step] *)

let pp_outcome ppf = function
  | Agree { blocks; verdict = Agree_clean } ->
    Fmt.pf ppf "layers agree on all %d block(s), no error" blocks
  | Agree { blocks; verdict = Agree_error e } ->
    Fmt.pf ppf "layers agree after %d block(s), both fail: %s" blocks e
  | Mismatch { step; reason } ->
    Fmt.pf ppf "LAYERS DIVERGED at block %d: %s" step reason

(* ------------------------------------------------------------------ *)
(* State comparison                                                    *)
(* ------------------------------------------------------------------ *)

let value_matches driver (v : Value.t) (rv : Rt_value.t) : bool =
  match (v, rv) with
  | Value.Null, Rt_value.Null -> true
  | Value.Bool a, Rt_value.Bool b -> Bool.equal a b
  | Value.Int a, Rt_value.Int b -> Int.equal a b
  | Value.Event e, Rt_value.Event id ->
    Tables.event_id_of_name driver (Names.Event.to_string e) = Some id
  | Value.Machine m, Rt_value.Machine h -> Mid.to_int m = h
  | _ -> false

let pp_pair ppf (v, rv) = Fmt.pf ppf "%a vs %a" Value.pp v Rt_value.pp rv

(* One machine: interpreter configuration vs runtime context. *)
let compare_machine driver (m : Machine.t) (ctx : Context.t) :
    (unit, string) result =
  let fail fmt = Fmt.kstr (fun s -> Error s) fmt in
  let who = Fmt.str "machine %a (%s)" Mid.pp m.self ctx.Context.table.mt_name in
  if not (String.equal (Names.Machine.to_string m.name) ctx.Context.table.mt_name)
  then
    fail "%s: type %s vs %s" who
      (Names.Machine.to_string m.name)
      ctx.Context.table.mt_name
  else
    let istates =
      List.map (fun (f : Machine.frame) -> Names.State.to_string f.fr_state) m.frames
    in
    let rstates =
      List.map
        (fun (f : Context.frame) ->
          ctx.Context.table.mt_states.(f.Context.f_state).Tables.st_name)
        ctx.Context.frames
    in
    if istates <> rstates then
      fail "%s: state stack [%s] vs [%s]" who
        (String.concat "; " istates)
        (String.concat "; " rstates)
    else
      let msg_ok =
        match (m.msg, ctx.Context.msg) with
        | None, None -> true
        | Some e, Some id ->
          Tables.event_id_of_name driver (Names.Event.to_string e) = Some id
        | _ -> false
      in
      if not msg_ok then fail "%s: msg differs" who
      else if not (value_matches driver m.arg ctx.Context.arg) then
        fail "%s: arg %a" who pp_pair (m.arg, ctx.Context.arg)
      else begin
        (* the store, variable by declared variable *)
        let bad_var = ref None in
        Array.iteri
          (fun i (name, _ty) ->
            if !bad_var = None then
              let iv =
                Option.value ~default:Value.Null
                  (Names.Var.Map.find_opt (Names.Var.of_string name) m.store)
              in
              let rv = ctx.Context.vars.(i) in
              if not (value_matches driver iv rv) then bad_var := Some (name, iv, rv))
          ctx.Context.table.mt_vars;
        match !bad_var with
        | Some (name, iv, rv) -> fail "%s: var %s: %a" who name pp_pair (iv, rv)
        | None -> (
          let iq = Equeue.to_list m.queue in
          let rq = Context.inbox_list ctx in
          if List.length iq <> List.length rq then
            fail "%s: queue length %d vs %d" who (List.length iq) (List.length rq)
          else
            match
              List.find_opt
                (fun ((entry : Equeue.entry), (e, rv)) ->
                  Tables.event_id_of_name driver
                    (Names.Event.to_string entry.event)
                  <> Some e
                  || not (value_matches driver entry.payload rv))
                (List.combine iq rq)
            with
            | Some (entry, (e, rv)) ->
              fail "%s: queue entry (%a, %a) vs (event#%d, %a)" who
                Names.Event.pp entry.event Value.pp entry.payload e Rt_value.pp rv
            | None -> Ok ())
      end

(* Whole configurations: the same live machines, each matching. *)
let compare_states driver (rt : Exec.t) (config : Config.t) : (unit, string) result
    =
  let live_rt = Hashtbl.length rt.Exec.instances in
  let live_i = Config.live_count config in
  if live_rt <> live_i then
    Error (Fmt.str "live machines: %d in interpreter vs %d in runtime" live_i live_rt)
  else
    Config.fold
      (fun mid m acc ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
          match Exec.find_instance rt (Mid.to_int mid) with
          | None ->
            Error
              (Fmt.str "machine %a is live in the interpreter only" Mid.pp mid)
          | Some ctx -> compare_machine driver m ctx))
      config (Ok ())

(* ------------------------------------------------------------------ *)
(* The differential run                                                *)
(* ------------------------------------------------------------------ *)

(* Build the runtime half: full tables, foreign stubs, the main instance
   with its initializers applied but its entry statement not yet run —
   exactly the peer of Step.initial_config. *)
let make_runtime (tab : P_static.Symtab.t) : (Exec.t * Tables.driver, string) result
    =
  match P_compile.Compile.compile_full ~name:"differential" tab.P_static.Symtab.program with
  | exception P_compile.Compile.Error msg -> Error msg
  | exception P_compile.Lower.Not_compilable msg -> Error msg
  | driver -> (
    let rt = Exec.create driver in
    (* The interpreter evaluates a foreign's declared model expression, or
       yields ⊥ when there is none. Models are ghost-world AST and are not
       lowered into tables, so parity is only possible for model-free
       foreigns: stub each one with the ⊥ the interpreter would produce. *)
    Array.iter
      (fun (mt : Tables.machine_table) ->
        Array.iter
          (fun (fs : Tables.foreign_sig) ->
            Exec.register_foreign rt fs.fs_name (fun _ _ -> Rt_value.Null))
          mt.mt_foreigns)
      driver.dr_machines;
    let has_model =
      List.exists
        (fun (m : P_syntax.Ast.machine) ->
          List.exists
            (fun (fd : P_syntax.Ast.foreign_decl) -> fd.foreign_model <> None)
            m.foreigns)
        tab.P_static.Symtab.program.machines
    in
    if has_model then
      Error "program declares foreign models, which only the interpreter evaluates"
    else
      match driver.dr_main with
      | None -> Error "full tables lost the main machine"
      | Some ty ->
        let main = Exec.create_instance rt ~creator:None ty in
        List.iter
          (fun (x, e) -> Exec.assign main x (Exec.eval rt main e))
          driver.dr_main_init;
        Ok (rt, driver))

let interp_kind = function
  | Step.Progress _ -> "progress"
  | Step.Blocked _ -> "blocked"
  | Step.Terminated _ -> "terminated"
  | Step.Failed e -> Fmt.str "error (%s)" (Errors.to_string e)
  | Step.Need_more_choices -> "choices exhausted"

let rt_kind = function
  | Exec.Block_progress -> "progress"
  | Exec.Block_blocked -> "blocked"
  | Exec.Block_terminated -> "terminated"
  | Exec.Block_error msg -> Fmt.str "error (%s)" msg
  | Exec.Block_choices_exhausted -> "choices exhausted"

(** Run [schedule] through both layers, comparing after every block.
    [Error] means the differential could not be set up or the schedule is
    itself invalid (names a machine neither layer has, or under-supplies
    ghost choices in both) — as opposed to [Ok (Mismatch _)], which is the
    interesting case: the layers disagree.

    [faults] installs the same deterministic fault plan on both sides:
    the interpreter threads it through {!Step.run_atomic} (fault index in
    the configuration), the runtime through {!Exec.set_fault_plan} (fault
    index on the engine) — both consume indices at the same hooks in the
    same order, so drops, duplicates, reorders, delays, and
    crash-restarts land identically and the state comparison stays
    exact. *)
let run ?faults (tab : P_static.Symtab.t) (schedule : (Mid.t * bool list) list) :
    (outcome, string) result =
  let faults =
    match faults with
    | Some p when not (P_semantics.Fault.is_none p) -> Some p
    | _ -> None
  in
  match make_runtime tab with
  | Error _ as e -> e
  | Ok (rt, driver) ->
    Exec.set_fault_plan rt faults;
    let config0, _main, _items = Step.initial_config tab in
    let mismatch step reason = Ok (Mismatch { step; reason }) in
    let rec go i config = function
      | [] -> Ok (Agree { blocks = i; verdict = Agree_clean })
      | (mid, choices) :: rest -> (
        let rt_ctx =
          match Exec.find_instance rt (Mid.to_int mid) with
          | Some ctx when ctx.Context.alive -> Some ctx
          | _ -> None
        in
        match (Config.mem config mid, rt_ctx) with
        | false, None ->
          Error
            (Fmt.str "invalid schedule: step %d names machine %a, which neither layer has"
               i Mid.pp mid)
        | true, None -> mismatch i (Fmt.str "machine %a is live in the interpreter only" Mid.pp mid)
        | false, Some _ -> mismatch i (Fmt.str "machine %a is live in the runtime only" Mid.pp mid)
        | true, Some ctx -> (
          let iout, _items = Step.run_atomic ~dedup:true ?faults tab config mid ~choices in
          let rout = Exec.step_block rt ctx ~choices in
          match (iout, rout) with
          | Step.Failed e, Exec.Block_error _ ->
            Ok (Agree { blocks = i + 1; verdict = Agree_error (Errors.to_string e) })
          | Step.Need_more_choices, Exec.Block_choices_exhausted ->
            Error
              (Fmt.str "invalid schedule: step %d under-supplies ghost choices in both layers"
                 i)
          | (Step.Progress _ | Step.Blocked _ | Step.Terminated _), (Exec.Block_progress | Exec.Block_blocked | Exec.Block_terminated)
            when interp_kind iout = rt_kind rout -> (
            let config' = Option.get (Step.outcome_config iout) in
            match compare_states driver rt config' with
            | Error reason -> mismatch i reason
            | Ok () -> go (i + 1) config' rest)
          | _ ->
            mismatch i
              (Fmt.str "outcome kinds differ: interpreter %s, runtime %s"
                 (interp_kind iout) (rt_kind rout))))
    in
    go 0 config0 schedule

(** Differential check of a trace artifact: replay its schedule through
    both layers, then hold the agreed verdict against what the artifact
    recorded. *)
let check_trace (tab : P_static.Symtab.t) (t : Trace_file.t) :
    (outcome, string) result =
  if not t.Trace_file.dedup then
    Error
      "trace was recorded without queue deduplication; the runtime only implements the paper's deduplicating append"
  else
    match Trace_file.fault_plan t with
    | Error e -> Error e
    | Ok faults ->
    match run ?faults tab (Replay.schedule_of_trace t) with
    | Error _ as e -> e
    | Ok (Mismatch _ as o) -> Ok o
    | Ok (Agree { verdict; _ } as o) -> (
      match (t.Trace_file.error, verdict) with
      | None, Agree_clean -> Ok o
      | Some expected, Agree_error got when String.equal expected got -> Ok o
      | Some expected, Agree_error got ->
        Error
          (Fmt.str "layers agree but on the wrong error: artifact recorded %S, both produced %S"
             expected got)
      | Some expected, Agree_clean ->
        Error
          (Fmt.str "layers agree on a clean run, but the artifact recorded error %S" expected)
      | None, Agree_error got ->
        Error (Fmt.str "layers agree on error %S, but the artifact recorded a clean run" got))
