(** Pretty-printer for the concrete textual syntax of P.

    The printed form is exactly the syntax accepted by [P_parser.Parser], so
    [parse (print p)] is the identity up to locations; the test suite checks
    this round trip with qcheck. *)

open Ast

let pp_unop ppf = function Not -> Fmt.string ppf "!" | Neg -> Fmt.string ppf "-"

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | And -> "&&"
  | Or -> "||"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* Precedence levels, loosest first; used to parenthesize minimally. *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Neq -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

let unop_prec = 7

let rec pp_expr_prec prec ppf expr =
  match expr.e with
  | This -> Fmt.string ppf "this"
  | Msg -> Fmt.string ppf "msg"
  | Arg -> Fmt.string ppf "arg"
  | Null -> Fmt.string ppf "null"
  | Bool_lit true -> Fmt.string ppf "true"
  | Bool_lit false -> Fmt.string ppf "false"
  | Int_lit i -> if i < 0 then Fmt.pf ppf "(%d)" i else Fmt.int ppf i
  | Event_lit e -> Names.Event.pp ppf e
  | Var x -> Names.Var.pp ppf x
  | Nondet -> Fmt.string ppf "*"
  | Unop (op, a) ->
    let doc ppf () = Fmt.pf ppf "%a%a" pp_unop op (pp_expr_prec unop_prec) a in
    if prec > unop_prec then Fmt.pf ppf "(%a)" doc () else doc ppf ()
  | Binop (op, a, b) ->
    let p = binop_prec op in
    let doc ppf () =
      Fmt.pf ppf "%a %s %a" (pp_expr_prec p) a (binop_symbol op) (pp_expr_prec (p + 1)) b
    in
    if prec > p then Fmt.pf ppf "(%a)" doc () else doc ppf ()
  | Foreign_call (f, args) ->
    Fmt.pf ppf "%a(%a)" Names.Foreign.pp f Fmt.(list ~sep:comma pp_expr) args

and pp_expr ppf expr = pp_expr_prec 0 ppf expr

let pp_init ppf (x, e) = Fmt.pf ppf "%a = %a" Names.Var.pp x pp_expr e

let is_null expr = match expr.e with Null -> true | _ -> false

let rec pp_stmt ppf stmt =
  match stmt.s with
  | Skip -> Fmt.string ppf "skip;"
  | Assign (x, e) -> Fmt.pf ppf "%a := %a;" Names.Var.pp x pp_expr e
  | New (x, m, inits) ->
    Fmt.pf ppf "%a := new %a(%a);" Names.Var.pp x Names.Machine.pp m
      Fmt.(list ~sep:comma pp_init)
      inits
  | Delete -> Fmt.string ppf "delete;"
  | Send (target, ev, payload) ->
    if is_null payload then
      Fmt.pf ppf "send(%a, %a);" pp_expr target Names.Event.pp ev
    else
      Fmt.pf ppf "send(%a, %a, %a);" pp_expr target Names.Event.pp ev pp_expr payload
  | Raise (ev, payload) ->
    if is_null payload then Fmt.pf ppf "raise(%a);" Names.Event.pp ev
    else Fmt.pf ppf "raise(%a, %a);" Names.Event.pp ev pp_expr payload
  | Leave -> Fmt.string ppf "leave;"
  | Return -> Fmt.string ppf "return;"
  | Assert e -> Fmt.pf ppf "assert(%a);" pp_expr e
  | Seq (a, b) -> Fmt.pf ppf "%a@ %a" pp_stmt a pp_stmt b
  | If (c, t, f) -> (
    match f.s with
    | Skip ->
      Fmt.pf ppf "@[<v 2>if (%a) {@ %a@]@ }" pp_expr c pp_stmt t
    | _ ->
      Fmt.pf ppf "@[<v 2>if (%a) {@ %a@]@ @[<v 2>} else {@ %a@]@ }" pp_expr c pp_stmt
        t pp_stmt f)
  | While (c, body) ->
    Fmt.pf ppf "@[<v 2>while (%a) {@ %a@]@ }" pp_expr c pp_stmt body
  | Call_state n -> Fmt.pf ppf "call %a;" Names.State.pp n
  | Foreign_stmt (f, args) ->
    Fmt.pf ppf "%a(%a);" Names.Foreign.pp f Fmt.(list ~sep:comma pp_expr) args

let is_skip stmt = match stmt.s with Skip -> true | _ -> false

let pp_event_list ppf evs = Fmt.(list ~sep:comma Names.Event.pp) ppf evs

let pp_state ppf st =
  Fmt.pf ppf "@[<v 2>state %a {" Names.State.pp st.state_name;
  if st.deferred <> [] then Fmt.pf ppf "@ defer %a;" pp_event_list st.deferred;
  if st.postponed <> [] then Fmt.pf ppf "@ postpone %a;" pp_event_list st.postponed;
  if not (is_skip st.entry) then
    Fmt.pf ppf "@ @[<v 2>entry {@ %a@]@ }" pp_stmt st.entry;
  if not (is_skip st.exit) then Fmt.pf ppf "@ @[<v 2>exit {@ %a@]@ }" pp_stmt st.exit;
  Fmt.pf ppf "@]@ }"

let pp_var_decl ppf vd =
  Fmt.pf ppf "%svar %a : %a;"
    (if vd.var_ghost then "ghost " else "")
    Names.Var.pp vd.var_name Ptype.pp vd.var_type

let pp_action ppf ad =
  Fmt.pf ppf "@[<v 2>action %a {@ %a@]@ }" Names.Action.pp ad.action_name pp_stmt
    ad.action_body

let pp_transition keyword ppf tr =
  Fmt.pf ppf "%s (%a, %a, %a);" keyword Names.State.pp tr.tr_source Names.Event.pp
    tr.tr_event Names.State.pp tr.tr_target

let pp_binding ppf bd =
  Fmt.pf ppf "on (%a, %a) do %a;" Names.State.pp bd.bd_state Names.Event.pp bd.bd_event
    Names.Action.pp bd.bd_action

let pp_foreign ppf fd =
  Fmt.pf ppf "foreign %a(%a) : %a%a;" Names.Foreign.pp fd.foreign_name
    Fmt.(list ~sep:comma Ptype.pp)
    fd.foreign_params Ptype.pp fd.foreign_ret
    (Fmt.option (fun ppf e -> Fmt.pf ppf " model %a" pp_expr e))
    fd.foreign_model

let pp_machine ppf m =
  Fmt.pf ppf "@[<v 2>%smachine %a {"
    (if m.machine_ghost then "ghost " else "")
    Names.Machine.pp m.machine_name;
  List.iter (fun vd -> Fmt.pf ppf "@ %a" pp_var_decl vd) m.vars;
  List.iter (fun fd -> Fmt.pf ppf "@ %a" pp_foreign fd) m.foreigns;
  List.iter (fun ad -> Fmt.pf ppf "@ %a" pp_action ad) m.actions;
  List.iter (fun st -> Fmt.pf ppf "@ %a" pp_state st) m.states;
  List.iter (fun tr -> Fmt.pf ppf "@ %a" (pp_transition "step") tr) m.steps;
  List.iter (fun tr -> Fmt.pf ppf "@ %a" (pp_transition "push") tr) m.calls;
  List.iter (fun bd -> Fmt.pf ppf "@ %a" pp_binding bd) m.bindings;
  Fmt.pf ppf "@]@ }"

let pp_event_decl ppf ev =
  match ev.event_payload with
  | Ptype.Void -> Fmt.pf ppf "event %a;" Names.Event.pp ev.event_name
  | ty -> Fmt.pf ppf "event %a(%a);" Names.Event.pp ev.event_name Ptype.pp ty

let pp_program ppf p =
  Fmt.pf ppf "@[<v>";
  List.iter (fun ev -> Fmt.pf ppf "%a@ " pp_event_decl ev) p.events;
  List.iter (fun m -> Fmt.pf ppf "%a@ " pp_machine m) p.machines;
  Fmt.pf ppf "main %a(%a);@]" Names.Machine.pp p.main
    Fmt.(list ~sep:comma pp_init)
    p.main_init

let program_to_string p = Fmt.str "%a@." pp_program p

let stmt_to_string s = Fmt.str "@[<v>%a@]" pp_stmt s

let expr_to_string e = Fmt.str "%a" pp_expr e
