(** Configuration of a single machine instance.

    The paper's machine configuration is [(σ, s, S, q)]: a call stack [σ] of
    (state, inherited-handler map) pairs, a variable store [s], the statement
    [S] remaining to execute, and the input buffer [q]. We represent the
    remaining statement as an explicit agenda of tasks; besides plain
    statements, the agenda carries the dynamic forms of the semantics —
    [raise(e,v)] (task [Handle]) and [return'] (task [Pop_return]) — as well
    as the administrative steps that Figure 5 performs inside a single rule
    (entering a step-transition target, popping a frame during unhandled
    event propagation).

    Frames additionally carry a saved continuation to support the [call n']
    *statement* (section 3, "Other features"): the caller's remaining agenda
    is frozen on the pushed frame and resumed when the callee returns. For
    call *transitions* the continuation is empty. When a pushed state is
    popped because of an event it does not handle (POP1), the saved
    continuation is discarded: the event aborts the subroutine and must be
    handled by the caller state. *)

open P_syntax

(** The value of the inherited handler map [a] at one event: [Defer] is the
    paper's [T], [Do a] an inherited action binding; absence from the map is
    [⊥]. *)
type handler = Defer | Do of Names.Action.t

let handler_equal a b =
  match (a, b) with
  | Defer, Defer -> true
  | Do x, Do y -> Names.Action.equal x y
  | (Defer | Do _), _ -> false

type task =
  | Exec of Ast.stmt  (** execute a statement *)
  | Handle of Names.Event.t * Value.t  (** the dynamic [raise(e, v)] *)
  | Pop_return  (** the dynamic [return']: pop, resume saved continuation *)
  | Pop_frame  (** pop during unhandled-event propagation (exit already run) *)
  | Enter of Names.State.t  (** finish a step transition: swap state, run entry *)

type frame = {
  fr_state : Names.State.t;
  fr_amap : handler Names.Event.Map.t;
  fr_cont : task list;  (** caller agenda resumed when this frame pops via return *)
}

type t = {
  name : Names.Machine.t;
  self : Mid.t;
  frames : frame list;  (** top of the call stack first; never empty while live *)
  store : Value.t Names.Var.Map.t;
  msg : Names.Event.t option;  (** the special variable [msg] *)
  arg : Value.t;  (** the special variable [arg] *)
  agenda : task list;
  queue : Equeue.t;
  mutable digest_memo : string;
      (** scratch slot owned by [P_checker.Fingerprint]: the canonical
          per-machine digest of this exact value, [""] when not yet
          computed. Not part of the machine's semantic state: ignored by
          {!compare}, reset by [Config.update] whenever a (possibly
          rebuilt) machine is bound into a configuration, so a non-empty
          memo is only ever carried by a physically shared, untouched
          machine. *)
  mutable shape_memo : string;
      (** second scratch slot with the same ownership and invalidation
          rules: the machine's identity-blind shape digest (every machine
          identifier in the encoding masked), used by symmetry reduction to
          order same-type machines without re-encoding them per state. *)
}

let top_frame t =
  match t.frames with
  | [] -> None
  | f :: _ -> Some f

let current_state t = Option.map (fun f -> f.fr_state) (top_frame t)

(** Fresh machine configuration entering the initial state of its kind.
    [store] must already map every declared variable (uninitialized ones to
    [⊥]); the entry statement of the initial state is placed on the agenda. *)
let create ~name ~self ~initial ~entry ~store =
  { name;
    self;
    frames = [ { fr_state = initial; fr_amap = Names.Event.Map.empty; fr_cont = [] } ];
    store;
    msg = None;
    arg = Value.Null;
    agenda = [ Exec entry ];
    queue = Equeue.empty;
    digest_memo = "";
    shape_memo = "" }

(* ------------------------------------------------------------------ *)
(* Effective deferred set and handler resolution (rule DEQUEUE).       *)
(* ------------------------------------------------------------------ *)

(** [effective_deferred mi t]: the set [d' = (d ∪ Deferred(m,n)) − t] of the
    DEQUEUE rule — inherited deferrals plus the current state's declared
    deferred set, minus events with a transition or action defined here
    (a defined transition overrides a deferral). *)
let effective_deferred (mi : P_static.Symtab.machine_info) t =
  match top_frame t with
  | None -> Names.Event.Set.empty
  | Some fr ->
    let n = fr.fr_state in
    let inherited =
      Names.Event.Map.fold
        (fun e h acc -> match h with Defer -> Names.Event.Set.add e acc | Do _ -> acc)
        fr.fr_amap Names.Event.Set.empty
    in
    let declared = P_static.Symtab.deferred_set mi n in
    let overridden e =
      P_static.Symtab.trans_defined mi n e
      || P_static.Symtab.bound_action mi n e <> None
    in
    Names.Event.Set.filter
      (fun e -> not (overridden e))
      (Names.Event.Set.union inherited declared)

(** A machine with an empty agenda is waiting for an event; it is enabled
    iff its queue holds a dequeuable (non-deferred) event. *)
let can_dequeue mi t =
  Equeue.has_dequeuable ~deferred:(effective_deferred mi t) t.queue

let is_enabled mi t = t.agenda <> [] || can_dequeue mi t

(* ------------------------------------------------------------------ *)
(* Structural comparison (used for state hashing by the checker).      *)
(* ------------------------------------------------------------------ *)

let compare_task (a : task) (b : task) = Stdlib.compare a b

let compare_frame a b =
  match Names.State.compare a.fr_state b.fr_state with
  | 0 -> (
    match
      Names.Event.Map.compare
        (fun x y -> Stdlib.compare x y)
        a.fr_amap b.fr_amap
    with
    | 0 -> List.compare compare_task a.fr_cont b.fr_cont
    | c -> c)
  | c -> c

let compare a b =
  let ( <?> ) c next = if c <> 0 then c else next () in
  Names.Machine.compare a.name b.name <?> fun () ->
  Mid.compare a.self b.self <?> fun () ->
  List.compare compare_frame a.frames b.frames <?> fun () ->
  Names.Var.Map.compare Value.compare a.store b.store <?> fun () ->
  Option.compare Names.Event.compare a.msg b.msg <?> fun () ->
  Value.compare a.arg b.arg <?> fun () ->
  List.compare compare_task a.agenda b.agenda <?> fun () -> Equeue.compare a.queue b.queue

let equal a b = compare a b = 0

let pp ppf t =
  Fmt.pf ppf "@[<v 2>%a %a in %a@ queue=%a@ agenda=%d task(s), stack depth %d@]"
    Names.Machine.pp t.name Mid.pp t.self
    Fmt.(option ~none:(any "<dead>") Names.State.pp)
    (current_state t) Equeue.pp t.queue (List.length t.agenda) (List.length t.frames)
