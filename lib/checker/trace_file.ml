(** The versioned on-disk counterexample artifact: one JSON object per
    line (JSONL via {!P_obs.Json}).

    Line 1 is the header — format marker, version, the program the trace
    belongs to, the engine that found it, the expected error (absent for a
    clean trace), the PRNG seed when the run was sampled, and the hex MD5
    fingerprints of the initial and final configurations. Every following
    line is one schedule step: the machine that ran one atomic block, the
    ghost [*] resolutions it consumed, and the configuration fingerprint
    after the block ("" for the failing block, which has no successor
    configuration).

    The schedule representation is deliberately scheduler-independent —
    machine identifiers and choices, not delay counts or stack rotations —
    so the same artifact replays through the operational semantics
    ({!Replay}), shrinks by step removal ({!Shrink}), and drives the
    compiled runtime tables ({!Differential}) without knowing which engine
    produced it. *)

module Json = P_obs.Json

let format_marker = "pcaml-trace"
let current_version = 1

type step = {
  mid : int;  (** {!P_semantics.Mid.t} as its dense integer *)
  choices : bool list;  (** ghost [*] resolutions, in evaluation order *)
  digest : string;
      (** hex MD5 of the configuration after this block; [""] when unknown
          or when the block fails (no successor configuration) *)
}

type t = {
  version : int;
  program : string option;
      (** where the program came from: ["example:NAME"] or ["file:PATH"],
          so [pc replay]/[pc shrink] can reload it without being told *)
  engine : string;  (** which engine recorded the schedule *)
  error : string option;
      (** rendered {!P_semantics.Errors.t} the trace must reproduce;
          [None] for the trace of a clean (non-failing) run *)
  seed : int option;  (** PRNG seed of a sampled run, for provenance *)
  faults : string option;
      (** rendered {!P_semantics.Fault} plan the schedule ran under (rates
          only, [Fault.to_string]); absent for a well-behaved host. Replay
          must re-install the same plan or the fault decisions — and hence
          the trace — change. *)
  fault_seed : int option;
      (** the fault plan's seed; present exactly when [faults] is *)
  dedup : bool;  (** whether the [⊕] queue append was on (it always is
                     outside ablations; replay must match) *)
  init_digest : string;  (** hex MD5 fingerprint of the initial config *)
  final_digest : string;
      (** hex MD5 fingerprint of the last configuration that exists: the
          final state of a clean trace, or the configuration *entering*
          the failing block *)
  steps : step list;
}

let make ?program ?error ?seed ?faults ?fault_seed ?(dedup = true) ~engine
    ~init_digest ~final_digest steps =
  { version = current_version;
    program;
    engine;
    error;
    seed;
    faults;
    fault_seed;
    dedup;
    init_digest;
    final_digest;
    steps }

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let opt_str = function None -> [] | Some s -> [ s ]

let header_json (t : t) : Json.t =
  Json.Obj
    ([ ("format", Json.String format_marker); ("version", Json.Int t.version) ]
    @ List.map (fun p -> ("program", Json.String p)) (opt_str t.program)
    @ [ ("engine", Json.String t.engine) ]
    @ List.map (fun e -> ("error", Json.String e)) (opt_str t.error)
    @ (match t.seed with None -> [] | Some s -> [ ("seed", Json.Int s) ])
    @ List.map (fun f -> ("faults", Json.String f)) (opt_str t.faults)
    @ (match t.fault_seed with
      | None -> []
      | Some s -> [ ("fault_seed", Json.Int s) ])
    @ [ ("dedup", Json.Bool t.dedup);
        ("init_digest", Json.String t.init_digest);
        ("final_digest", Json.String t.final_digest);
        ("steps", Json.Int (List.length t.steps)) ])

let step_json i (s : step) : Json.t =
  Json.Obj
    ([ ("i", Json.Int i);
       ("mid", Json.Int s.mid);
       ("choices", Json.List (List.map (fun b -> Json.Bool b) s.choices)) ]
    @ if s.digest = "" then [] else [ ("digest", Json.String s.digest) ])

let write_channel oc (t : t) =
  output_string oc (Json.to_string (header_json t));
  output_char oc '\n';
  List.iteri
    (fun i s ->
      output_string oc (Json.to_string (step_json i s));
      output_char oc '\n')
    t.steps

let write_file path (t : t) =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc t)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let parse_line lineno line : (Json.t, string) result =
  match Json.of_string line with
  | j -> Ok j
  | exception Json.Parse_error msg ->
    Error (Fmt.str "line %d: not valid JSON (%s)" lineno msg)

let field name j = Json.member name j

let require what = function
  | Some v -> Ok v
  | None -> Error (Fmt.str "header: missing or ill-typed %s" what)

let parse_header j : (t, string) result =
  let* format = require "format" Option.(bind (field "format" j) Json.to_str) in
  if format <> format_marker then
    Error (Fmt.str "not a %s file (format %S)" format_marker format)
  else
    let* version = require "version" Option.(bind (field "version" j) Json.to_int) in
    if version <> current_version then
      Error (Fmt.str "unsupported trace version %d (this build reads %d)" version
           current_version)
    else
      let* engine = require "engine" Option.(bind (field "engine" j) Json.to_str) in
      let* dedup = require "dedup" Option.(bind (field "dedup" j) Json.to_bool) in
      let* init_digest =
        require "init_digest" Option.(bind (field "init_digest" j) Json.to_str)
      in
      let* final_digest =
        require "final_digest" Option.(bind (field "final_digest" j) Json.to_str)
      in
      Ok
        { version;
          program = Option.bind (field "program" j) Json.to_str;
          engine;
          error = Option.bind (field "error" j) Json.to_str;
          seed = Option.bind (field "seed" j) Json.to_int;
          faults = Option.bind (field "faults" j) Json.to_str;
          fault_seed = Option.bind (field "fault_seed" j) Json.to_int;
          dedup;
          init_digest;
          final_digest;
          steps = [] }

let parse_step lineno j : (step, string) result =
  let* mid =
    match Option.(bind (field "mid" j) Json.to_int) with
    | Some m -> Ok m
    | None -> Error (Fmt.str "line %d: step is missing mid" lineno)
  in
  let* choices =
    match Option.(bind (field "choices" j) Json.to_list) with
    | None -> Error (Fmt.str "line %d: step is missing choices" lineno)
    | Some l ->
      List.fold_left
        (fun acc c ->
          let* acc = acc in
          match Json.to_bool c with
          | Some b -> Ok (b :: acc)
          | None -> Error (Fmt.str "line %d: non-boolean ghost choice" lineno))
        (Ok []) l
      |> Result.map List.rev
  in
  let digest = Option.value ~default:"" (Option.bind (field "digest" j) Json.to_str) in
  Ok { mid; choices; digest }

let of_lines (lines : string list) : (t, string) result =
  match lines with
  | [] -> Error "empty trace file"
  | header :: rest ->
    let* hj = parse_line 1 header in
    let* t = parse_header hj in
    let* steps_rev =
      List.fold_left
        (fun acc (lineno, line) ->
          let* acc = acc in
          if String.trim line = "" then Ok acc
          else
            let* j = parse_line lineno line in
            let* s = parse_step lineno j in
            Ok (s :: acc))
        (Ok [])
        (List.mapi (fun i l -> (i + 2, l)) rest)
    in
    Ok { t with steps = List.rev steps_rev }

let read_channel ic : (t, string) result =
  let rec lines acc =
    match input_line ic with
    | line -> lines (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  of_lines (lines [])

let read_file path : (t, string) result =
  match open_in path with
  | ic -> Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)
  | exception Sys_error msg -> Error msg

let fault_plan (t : t) : (P_semantics.Fault.plan option, string) result =
  match t.faults with
  | None -> Ok None
  | Some spec ->
    (match P_semantics.Fault.of_string spec with
    | Error e -> Error (Fmt.str "header: bad faults spec %S: %s" spec e)
    | Ok p ->
      let seed = Option.value ~default:0 t.fault_seed in
      Ok (Some (P_semantics.Fault.with_seed seed p)))

let pp_summary ppf (t : t) =
  Fmt.pf ppf "%d step(s), engine %s%a%a%a" (List.length t.steps) t.engine
    (fun ppf -> function
      | Some e -> Fmt.pf ppf ", expecting %s" e
      | None -> Fmt.pf ppf ", clean")
    t.error
    (fun ppf -> function
      | Some s -> Fmt.pf ppf ", seed %d" s
      | None -> ())
    t.seed
    (fun ppf -> function
      | Some f -> Fmt.pf ppf ", faults %s" f
      | None -> ())
    t.faults
