(** The ghost-erasure type system (section 3.3 of the paper).

    Ghost machines, ghost variables, and events sent to ghost machines exist
    only for verification and are erased during compilation. This analysis
    guarantees that the erasure is semantics preserving: within *real*
    machines, ghost terms must not influence real computation (assertions
    excepted), and machine-identifier values are completely separated — a
    ghost [id] variable only ever refers to ghost machines and a real [id]
    variable only to real machines — so every [send] targeting a ghost
    machine can be identified syntactically and removed.

    Concretely, in every real machine:
    - an expression is ghost-tainted iff it mentions a ghost variable;
    - real variables may not be assigned ghost-tainted expressions;
    - [id]-typed assignments must preserve ghostness in both directions;
    - branch and loop conditions must be real;
    - [send] to a ghost-tainted target is a ghost send: it is erased, and its
      payload may be ghost; a [send] with a real target must have a real
      payload;
    - [raise] drives the real machine itself, so its payload must be real;
    - [new] of a ghost machine must store into a ghost variable (and vice
      versa); initializers flowing into a real machine must be real;
    - [assert] may freely mention ghost state (it is erased with its
      ghost operands at compile time);
    - arguments of foreign calls must be real (they execute at run time);
      foreign *models* are verification-only and exempt.

    Ghost machines themselves are unconstrained. *)

open P_syntax

let errs acc loc fmt = Fmt.kstr (fun dmsg -> acc := { Symtab.dloc = loc; dmsg } :: !acc) fmt

let is_ghost_var (mi : Symtab.machine_info) x =
  match Symtab.var_decl mi x with Some vd -> vd.Ast.var_ghost | None -> false

(** An expression is ghost-tainted when it reads any ghost variable. *)
let rec ghost_tainted mi (expr : Ast.expr) =
  match expr.e with
  | Ast.Var x -> is_ghost_var mi x
  | Ast.Nondet -> true
  | Ast.Unop (_, a) -> ghost_tainted mi a
  | Ast.Binop (_, a, b) -> ghost_tainted mi a || ghost_tainted mi b
  | Ast.Foreign_call (_, args) -> List.exists (ghost_tainted mi) args
  | Ast.This | Ast.Msg | Ast.Arg | Ast.Null | Ast.Bool_lit _ | Ast.Int_lit _
  | Ast.Event_lit _ -> false

(* Ghostness of an id-typed expression, where determinable. [None] means the
   expression is not a machine reference we can classify (e.g. [null]). *)
let id_ghostness mi (expr : Ast.expr) =
  match expr.e with
  | Ast.Var x -> Some (is_ghost_var mi x)
  | Ast.This -> Some false (* [this] in a real machine is a real reference *)
  | _ -> None

let check_real_expr mi acc what (e : Ast.expr) =
  if ghost_tainted mi e then
    errs acc e.eloc "%s in real machine %a must not depend on ghost state" what
      Names.Machine.pp mi.Symtab.m_ast.machine_name

let rec check_stmt tab (mi : Symtab.machine_info) acc (stmt : Ast.stmt) =
  match stmt.s with
  | Ast.Skip | Ast.Delete | Ast.Leave | Ast.Return | Ast.Call_state _ -> ()
  | Ast.Assert _ -> () (* assertions may inspect ghost state *)
  | Ast.Assign (x, e) ->
    let xg = is_ghost_var mi x in
    if (not xg) && ghost_tainted mi e then
      errs acc stmt.sloc "real variable %a must not be assigned a ghost expression"
        Names.Var.pp x;
    (* complete separation of machine identifiers *)
    (match Symtab.var_decl mi x with
    | Some vd when vd.Ast.var_type = Ptype.Machine_id -> (
      match id_ghostness mi e with
      | Some eg when eg <> xg ->
        errs acc stmt.sloc
          "machine-identifier assignment mixes ghost and real references (%a)"
          Names.Var.pp x
      | Some _ | None -> ())
    | Some _ | None -> ())
  | Ast.New (x, target, inits) ->
    let xg = is_ghost_var mi x in
    let target_ghost = Symtab.is_ghost_machine tab target in
    if target_ghost && not xg then
      errs acc stmt.sloc
        "reference to new ghost machine %a must be stored in a ghost variable"
        Names.Machine.pp target;
    if (not target_ghost) && xg then
      errs acc stmt.sloc
        "reference to new real machine %a must be stored in a real variable"
        Names.Machine.pp target;
    if not target_ghost then
      List.iter
        (fun (y, e) ->
          match Symtab.machine_info tab target with
          | Some tmi when not (is_ghost_var tmi y) ->
            check_real_expr mi acc "initializer of a real machine" e
          | Some _ | None -> ())
        inits
  | Ast.Send (target, _, payload) -> (
    match id_ghostness mi target with
    | Some true -> () (* ghost send: erased entirely; payload unconstrained *)
    | Some false | None ->
      check_real_expr mi acc "target of a real send" target;
      check_real_expr mi acc "payload of a real send" payload)
  | Ast.Raise (_, payload) -> check_real_expr mi acc "payload of raise" payload
  | Ast.Seq (a, b) ->
    check_stmt tab mi acc a;
    check_stmt tab mi acc b
  | Ast.If (c, t, f) ->
    check_real_expr mi acc "branch condition" c;
    check_stmt tab mi acc t;
    check_stmt tab mi acc f
  | Ast.While (c, body) ->
    check_real_expr mi acc "loop condition" c;
    check_stmt tab mi acc body
  | Ast.Foreign_stmt (_, args) ->
    List.iter (check_real_expr mi acc "argument of a foreign call") args

let check_machine tab acc (mi : Symtab.machine_info) =
  if not mi.m_ast.machine_ghost then begin
    List.iter
      (fun (st : Ast.state) ->
        check_stmt tab mi acc st.Ast.entry;
        check_stmt tab mi acc st.Ast.exit)
      mi.m_ast.states;
    List.iter
      (fun (ad : Ast.action_decl) -> check_stmt tab mi acc ad.action_body)
      mi.m_ast.actions
  end

(** Check the erasure discipline on every real machine. *)
let check (tab : Symtab.t) : Symtab.diagnostic list =
  let acc = ref [] in
  Names.Machine.Tbl.iter (fun _ mi -> check_machine tab acc mi) tab.machines;
  List.rev !acc
