(* pc — the P compiler and verifier command-line driver.

   Subcommands mirror the paper's toolchain: [check] (static checks and the
   ghost-erasure type system), [verify] (systematic testing with the
   delay-bounded scheduler, optionally the liveness checks), [simulate]
   (the deterministic d=0 causal execution), [erase] (print the compiled
   real-only program), [compile] (emit table-driven C), and [print]
   (parse and pretty-print). Programs come from a .p file or from the
   built-in example suite via --example. *)

open Cmdliner

let examples : (string * (unit -> P_syntax.Ast.program)) list =
  [ ("elevator", fun () -> P_examples_lib.Elevator.program ());
    ("elevator-buggy", fun () -> P_examples_lib.Elevator.buggy_program ());
    ("pingpong", fun () -> P_examples_lib.Pingpong.program ());
    ("pingpong-buggy", fun () -> P_examples_lib.Pingpong.buggy_program ());
    ("german", fun () -> P_examples_lib.German.program ());
    ("german-buggy", fun () -> P_examples_lib.German.buggy_program ());
    ("switchled", fun () -> P_examples_lib.Switch_led.program ());
    ("switchled-buggy", fun () -> P_examples_lib.Switch_led.buggy_program ());
    ("tokenring", fun () -> P_examples_lib.Token_ring.program ());
    ("tokenring-buggy", fun () -> P_examples_lib.Token_ring.buggy_program ());
    ("boundedbuffer", fun () -> P_examples_lib.Bounded_buffer.program ());
    ("boundedbuffer-buggy", fun () -> P_examples_lib.Bounded_buffer.buggy_program ());
    ("leaderring", fun () -> P_examples_lib.Leader_ring.program ());
    ("leaderring-buggy", fun () -> P_examples_lib.Leader_ring.buggy_program ());
    ("failoverchain", fun () -> P_examples_lib.Failover_chain.program ());
    ("failoverchain-buggy", fun () -> P_examples_lib.Failover_chain.buggy_program ());
    ("usb-hsm", fun () -> P_usb.Gen.program_of_spec P_usb.Gen.hsm_spec);
    ("usb-psm30", fun () -> P_usb.Gen.program_of_spec P_usb.Gen.psm30_spec);
    ("usb-psm20", fun () -> P_usb.Gen.program_of_spec P_usb.Gen.psm20_spec);
    ("usb-dsm", fun () -> P_usb.Gen.program_of_spec P_usb.Gen.dsm_spec);
    ("usb-stack", fun () -> P_usb.Stack.program ());
    ("usb-stack-buggy", fun () -> P_usb.Stack.buggy_program ()) ]

let load_program file example =
  match (file, example) with
  | Some path, None -> (
    try Ok (P_parser.Parser.program_of_file path) with
    | P_parser.Parse_error.Error e -> Error (P_parser.Parse_error.to_string e)
    | Sys_error msg -> Error msg)
  | None, Some name -> (
    match List.assoc_opt name examples with
    | Some f -> Ok (f ())
    | None ->
      Error
        (Fmt.str "unknown example %S; available: %s" name
           (String.concat ", " (List.map fst examples))))
  | Some _, Some _ -> Error "give either FILE or --example, not both"
  | None, None -> Error "give a FILE or --example NAME"

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"P source file.")

let example_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "example" ] ~docv:"NAME" ~doc:"Use a built-in example program instead of a file.")

let or_die = function
  | Ok v -> v
  | Error msg ->
    Fmt.epr "pc: %s@." msg;
    exit 2

(* Output files are opened before any search runs, so a bad path fails
   fast instead of discarding a long exploration's results at the end. *)
let open_out_or_die path =
  try open_out path
  with Sys_error msg ->
    Fmt.epr "pc: cannot write %s@." msg;
    exit 2

(* ---------------- check ---------------- *)

let run_check file example =
  let program = or_die (load_program file example) in
  match P_static.Check.run program with
  | { diagnostics = []; _ } ->
    Fmt.pr "ok: %d event(s), %d machine(s), %d state(s), %d transition(s)@."
      (List.length program.events)
      (List.length program.machines)
      (P_syntax.Ast.program_state_count program)
      (P_syntax.Ast.program_transition_count program)
  | { diagnostics; _ } ->
    Fmt.pr "%a@." P_static.Check.pp_diagnostics diagnostics;
    exit 1

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Run the static checks (well-formedness, types, ghost erasure).")
    Term.(const run_check $ file_arg $ example_arg)

(* ---------------- verify ---------------- *)

(* A stderr heartbeat for --progress: at most about one line per second,
   driven by the telemetry sampler, so it reports live rates (over the
   sampling interval) rather than averages since start. *)
let make_heartbeat () =
  let last = ref neg_infinity in
  fun (x : P_obs.Telemetry.sample) ->
    if x.elapsed_s -. !last >= 1.0 then begin
      last := x.elapsed_s;
      Fmt.epr
        "pc: %.1fs: %d states (%.0f/s), %d transitions (%.0f/s), frontier %.0f, \
         steal %.0f%%, %.0f B/state, heap %.1f MB@."
        x.elapsed_s x.states x.states_per_s x.transitions x.transitions_per_s
        x.frontier
        (100.0 *. x.steal_success_rate)
        x.bytes_per_state x.heap_mb;
      if x.store_mb > 0.0 then
        Fmt.epr "pc:   store: %.1f MB (%.1f B/state)@." x.store_mb
          x.store_bytes_per_state
    end

(* Provenance string recorded in counterexample artifacts, so [pc replay] /
   [pc shrink] can reload the program from the artifact alone. *)
let program_provenance file example =
  match (file, example) with
  | Some path, None -> "file:" ^ path
  | None, Some name -> "example:" ^ name
  | _ -> assert false (* load_program already rejected these *)

(* Validate a --domains / --portfolio count: die with the typed error on an
   impossible count (instead of the bare [Failure] the runtime would raise
   past its hard limit), warn when merely oversubscribing this machine. *)
let check_domain_count n =
  match P_checker.Parallel.validate_domains ~hard:true n with
  | Error e ->
    or_die (Error (Fmt.str "%a" P_checker.Parallel.pp_domains_error e))
  | Ok _ -> (
    match P_checker.Parallel.validate_domains n with
    | Ok _ -> ()
    | Error e ->
      Fmt.epr "pc: warning: %a@." P_checker.Parallel.pp_domains_error e)

(* Resolve --faults SPEC / --fault-seed N into a normalized plan: parse
   errors die with the parser's message, an all-zero spec means "no
   injection", and --fault-seed without --faults is a usage error. *)
let resolve_faults faults fault_seed =
  match faults with
  | None ->
    if fault_seed <> None then
      or_die (Error "--fault-seed requires --faults");
    None
  | Some spec -> (
    let p = or_die (P_semantics.Fault.of_string spec) in
    if P_semantics.Fault.is_none p then None
    else
      Some
        (P_semantics.Fault.with_seed (Option.value ~default:0 fault_seed) p))

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Run under a deterministic adversarial host: comma-separated \
           $(b,class=probability) fields with classes $(b,drop), $(b,dup), \
           $(b,reorder), $(b,delay), $(b,crash) and probabilities in 0..1 \
           (e.g. $(b,drop=0.05,crash=0.01)). Every injection is a pure \
           function of $(b,--fault-seed) and a fault-point counter, so runs \
           are reproducible and counterexamples replay and shrink.")

let fault_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:
          "Seed for the $(b,--faults) schedule (default 0). Recorded in any \
           counterexample artifact.")

let default_ce_path file example =
  match (file, example) with
  | Some path, None -> Filename.remove_extension path ^ ".counterexample.jsonl"
  | None, Some name -> name ^ ".counterexample.jsonl"
  | _ -> "counterexample.jsonl"

let run_verify file example delay_bound max_states liveness show_trace domains
    fingerprint store store_capacity reduce stats_json trace_out profile_out
    progress seed faults fault_seed ce_out no_ce =
  (match (seed, domains) with
  | Some _, Some _ -> or_die (Error "--seed is not supported with --domains")
  | _ -> ());
  Option.iter check_domain_count domains;
  let program = or_die (load_program file example) in
  let fingerprint = or_die (P_checker.Fingerprint.mode_of_string fingerprint) in
  let store = or_die (P_checker.State_store.kind_of_string store) in
  let reduce = or_die (P_checker.Reduce.of_string reduce) in
  let faults = resolve_faults faults fault_seed in
  (match faults with
  | Some _ when liveness ->
    or_die (Error "--faults is not supported with --liveness")
  | Some _ when reduce.P_checker.Reduce.por ->
    or_die
      (Error
         "--faults is not compatible with sleep-set POR (--reduce por|full): \
          injected faults consume schedule-dependent fault indices, so \
          commuted blocks are no longer equivalent; use --reduce symmetry \
          or none")
  | _ -> ());
  (match store_capacity with
  | Some c when c < 1 -> or_die (Error "--store-capacity must be positive")
  | Some _ when store = P_checker.State_store.Exact ->
    or_die (Error "--store-capacity only applies to --store compact|bitstate")
  | _ -> ());
  let metrics =
    match stats_json with None -> None | Some _ -> Some (P_obs.Metrics.create ())
  in
  let stats_oc = Option.map open_out_or_die stats_json in
  let trace_oc = Option.map open_out_or_die trace_out in
  let profile_oc = Option.map open_out_or_die profile_out in
  let sink =
    match trace_oc with None -> P_obs.Sink.null | Some oc -> P_obs.Sink.chrome oc
  in
  (* --profile turns on the per-domain phase profiler (spans render in the
     --trace-out timeline, exact totals in --stats-json) and the telemetry
     sampler whose JSONL time series goes to the --profile file itself;
     --progress reuses the same sampler for its heartbeat *)
  let profiler =
    match profile_oc with
    | None -> P_obs.Profile.null
    | Some _ ->
      P_obs.Profile.create ~workers:(Option.value ~default:1 domains) ()
  in
  let telemetry =
    if profile_oc = None && not progress then P_obs.Telemetry.null
    else
      P_obs.Telemetry.create
        ?sink:(Option.map P_obs.Sink.jsonl profile_oc)
        ?on_sample:(if progress then Some (make_heartbeat ()) else None)
        ()
  in
  let telemetry_sink_close () =
    match profile_oc with
    | None -> ()
    | Some oc ->
      flush oc;
      close_out oc
  in
  let instr =
    P_checker.Search.instr ?metrics ~sink ~profile:profiler ~telemetry ()
  in
  P_obs.Profile.start_gc profiler;
  let report =
    P_checker.Verifier.verify ~delay_bound ~max_states ~liveness ~fingerprint
      ~store ?store_capacity ~reduce ?seed ?domains ?faults ~instr program
  in
  P_obs.Telemetry.force telemetry;
  telemetry_sink_close ();
  (* profiler lanes land in the same Chrome trace as the engine spans *)
  P_obs.Profile.flush profiler sink;
  (* the counterexample (when any) rides along in the trace file *)
  (match report.safety with
  | Some { verdict = P_checker.Search.Error_found ce; _ }
    when P_obs.Sink.enabled sink -> P_obs.Sem_trace.emit sink ce.trace
  | _ -> ());
  P_obs.Sink.close sink;
  Option.iter close_out trace_oc;
  (match stats_oc with
  | None -> ()
  | Some oc ->
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        P_checker.Obs_report.write_channel oc
          (P_checker.Obs_report.json_of_report ?metrics ~profile:profiler report)));
  Fmt.pr "%a" P_checker.Verifier.pp_report report;
  (match report.safety with
  | Some { verdict = P_checker.Search.Error_found ce; _ } when show_trace ->
    Fmt.pr "counterexample trace:@.%a@." P_semantics.Trace.pp ce.trace
  | _ -> ());
  (* every failing verify leaves a replayable artifact behind *)
  (match report.safety with
  | Some { verdict = P_checker.Search.Error_found ce; _ } when not no_ce -> (
    let path = Option.value ce_out ~default:(default_ce_path file example) in
    let engine = match domains with None -> "delay_bounded" | Some _ -> "parallel" in
    match P_static.Check.run program with
    | { diagnostics = _ :: _; _ } -> ()
    | { symtab; _ } -> (
      match
        P_checker.Replay.record_counterexample
          ~program:(program_provenance file example)
          ?seed ?faults ~engine symtab ce
      with
      | Ok tf ->
        P_checker.Trace_file.write_file path tf;
        Fmt.pr "counterexample: %s (inspect with: pc replay %s, minimize with: pc shrink %s)@."
          path path path
      | Error e -> Fmt.epr "pc: could not record the counterexample: %s@." e))
  | _ -> ());
  if not (P_checker.Verifier.is_clean report) then exit 1

let verify_cmd =
  let delay =
    Arg.(value & opt int 2 & info [ "d"; "delay-bound" ] ~doc:"Delay bound for the scheduler.")
  in
  let max_states =
    Arg.(value & opt int 200_000 & info [ "max-states" ] ~doc:"State budget for the search.")
  in
  let liveness =
    Arg.(value & flag & info [ "liveness" ] ~doc:"Also run the responsiveness (liveness) checks.")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the counterexample trace.") in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Use the multicore exploration engine with N domains.")
  in
  let fingerprint =
    Arg.(
      value
      & opt string "incremental"
      & info [ "fingerprint" ] ~docv:"MODE"
          ~doc:
            "State fingerprinting: $(b,incremental) (per-machine digest \
             cache, the default), $(b,full) (re-encode every configuration), \
             or $(b,paranoid) (compute both and report any disagreement in \
             the checker.fp_collisions metric). Verdicts and state counts \
             are identical in every mode.")
  in
  let store =
    Arg.(
      value
      & opt string "exact"
      & info [ "store" ] ~docv:"KIND"
          ~doc:
            "Seen-set representation: $(b,exact) (string-keyed hashtable, \
             ground truth, the default), $(b,compact) (open-addressing \
             64-bit fingerprint arena off the OCaml heap \u{2014} \u{2265}4x \
             smaller, lock-free CAS claims under $(b,--domains), merges \
             distinct states only on a 47-bit tag collision), or \
             $(b,bitstate) (double-hashed bit array, smallest footprint, \
             reports an expected-omission bound; never un-finds an error).")
  in
  let store_capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "store-capacity" ] ~docv:"N"
          ~doc:
            "Arena size for $(b,--store compact) (slots) or $(b,bitstate) \
             (bits); rounded up to a power of two. Default: sized from \
             $(b,--max-states).")
  in
  let reduce =
    Arg.(
      value
      & opt string "none"
      & info [ "reduce" ] ~docv:"MODE"
          ~doc:
            "State-space reduction: $(b,none) (the default), $(b,por) \
             (sleep-set partial-order reduction over scheduler choices), \
             $(b,symmetry) (canonicalize machine identities before \
             fingerprinting, so symmetric peers collapse to one state), or \
             $(b,full) (both). Reduced runs reach the same verdict with \
             never more states; validate a specific program with $(b,pc \
             replay --differential) on the reduced counterexample.")
  in
  let stats_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:"Write the verification report and a metrics dump as JSON to $(docv).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON file (openable in Perfetto or \
             chrome://tracing) with engine spans and the counterexample trace.")
  in
  let profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:
            "Enable the per-domain phase profiler and write the telemetry \
             time series (states/s, transitions/s, frontier occupancy, steal \
             success rate, bytes/state) as JSONL to $(docv). Phase spans \
             (expand, steal, barrier_wait, shard_lock, gc) render as \
             per-worker lanes in the $(b,--trace-out) Chrome trace; exact \
             per-phase totals are embedded in $(b,--stats-json).")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Print a heartbeat (live states/s, transitions/s, frontier, \
             steal success, bytes/state, heap) to stderr about once a second.")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Sample ghost $(b,*) choices from a PRNG seeded with $(docv) \
             instead of enumerating them. The seed is recorded in the \
             report, the stats JSON, and any counterexample artifact, so a \
             sampled failure is reproducible.")
  in
  let ce_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "ce-out" ] ~docv:"FILE"
          ~doc:
            "Where to write the counterexample trace artifact when the \
             search fails (default: derived from the program name, \
             $(b,NAME.counterexample.jsonl)).")
  in
  let no_ce =
    Arg.(
      value & flag
      & info [ "no-ce" ] ~doc:"Do not write a counterexample trace artifact on failure.")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Systematic testing with the causal delay-bounded scheduler.")
    Term.(
      const run_verify $ file_arg $ example_arg $ delay $ max_states $ liveness $ trace
      $ domains $ fingerprint $ store $ store_capacity $ reduce $ stats_json
      $ trace_out $ profile_out $ progress $ seed $ faults_arg $ fault_seed_arg
      $ ce_out $ no_ce)

(* ---------------- random ---------------- *)

let run_random file example walks max_blocks seed portfolio show_trace ce_out
    no_ce =
  Option.iter check_domain_count portfolio;
  let program = or_die (load_program file example) in
  match P_static.Check.run program with
  | { diagnostics = (_ :: _) as ds; _ } ->
    Fmt.pr "%a@." P_static.Check.pp_diagnostics ds;
    exit 1
  | { symtab; _ } -> (
    let r =
      match portfolio with
      | None -> P_checker.Random_walk.run ~walks ~max_blocks ~seed symtab
      | Some domains ->
        P_checker.Random_walk.run_portfolio ~walks ~max_blocks ~seed ~domains
          symtab
    in
    Fmt.pr "random walks: %a@." P_checker.Random_walk.pp_result r;
    match r.first_error with
    | Some f ->
      if show_trace then
        Fmt.pr "first failing trace:@.%a@." P_semantics.Trace.pp f.trace;
      (if not no_ce then
         let path = Option.value ce_out ~default:(default_ce_path file example) in
         match
           P_checker.Replay.record
             ~program:(program_provenance file example)
             ~seed:f.walk_seed ~engine:"random_walk" symtab f.schedule
         with
         | Ok tf ->
           P_checker.Trace_file.write_file path tf;
           Fmt.pr
             "counterexample: %s (inspect with: pc replay %s, minimize with: pc shrink %s)@."
             path path path
         | Error e -> Fmt.epr "pc: could not record the counterexample: %s@." e);
      exit 1
    | None -> ())

let random_cmd =
  let walks = Arg.(value & opt int 100 & info [ "walks" ] ~doc:"Number of random schedules.") in
  let max_blocks =
    Arg.(value & opt int 1_000 & info [ "max-blocks" ] ~doc:"Atomic-block budget per walk.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let portfolio =
    Arg.(
      value
      & opt (some int) None
      & info [ "portfolio" ] ~docv:"N"
          ~doc:
            "Race the seeded walks across $(docv) domains sharing only a \
             found-it flag. Per-walk seeds are derived exactly as in the \
             sequential mode, so the winning walk replays and shrinks \
             unchanged.")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the first failing trace.") in
  let ce_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "ce-out" ] ~docv:"FILE"
          ~doc:
            "Where to write the first failing walk's trace artifact \
             (default: derived from the program name).")
  in
  let no_ce =
    Arg.(
      value & flag
      & info [ "no-ce" ] ~doc:"Do not write a counterexample trace artifact on failure.")
  in
  Cmd.v
    (Cmd.info "random"
       ~doc:"Random-walk testing (the baseline the systematic checker is compared to).")
    Term.(
      const run_random $ file_arg $ example_arg $ walks $ max_blocks $ seed
      $ portfolio $ trace $ ce_out $ no_ce)

(* ---------------- simulate ---------------- *)

(* --shards N: execute the compiled tables on the effects-based sharded
   serving runtime instead of the semantics interpreter — the production
   execution path under a simulation driver. Full tables (ghosts kept),
   so closed programs drive themselves; [*] choices resolve from --seed.
   The --max-blocks budget maps onto events processed, polled against the
   racy shard counters. *)
let run_simulate_sharded program shards max_blocks seed faults stats_json =
  let module Shard = P_runtime.Shard in
  let module Exec = P_runtime.Exec in
  (match P_static.Check.run program with
  | { diagnostics = (_ :: _) as ds; _ } ->
    Fmt.pr "%a@." P_static.Check.pp_diagnostics ds;
    exit 1
  | _ -> ());
  let driver = P_compile.Compile.compile_full program in
  let metrics =
    match stats_json with None -> None | Some _ -> Some (P_obs.Metrics.create ())
  in
  let stats_oc = Option.map open_out_or_die stats_json in
  let t = Shard.create ~shards ?seed ?faults ?metrics driver in
  (* stub every declared foreign with the ⊥ the interpreter would produce
     for a model-free foreign (the differential harness's convention) *)
  Array.iter
    (fun (mt : P_compile.Tables.machine_table) ->
      Array.iter
        (fun (fs : P_compile.Tables.foreign_sig) ->
          Shard.register_foreign t fs.fs_name (fun _ _ -> P_runtime.Rt_value.Null))
        mt.mt_foreigns)
    driver.P_compile.Tables.dr_machines;
  let main_ty =
    match driver.P_compile.Tables.dr_main with
    | Some ty -> ty
    | None -> or_die (Error "program has no main machine")
  in
  let main_name = driver.P_compile.Tables.dr_machines.(main_ty).mt_name in
  let main = Shard.create_machine t main_name in
  (* apply the trailing main-initialization of Figure 3 before the entry
     statement runs (the shards are not started yet) *)
  let main_rt = Shard.exec_of t (Shard.home t main) in
  (match Exec.find_instance main_rt main with
  | None -> assert false
  | Some ctx ->
    List.iter
      (fun (x, e) -> Exec.assign ctx x (Exec.eval main_rt ctx e))
      driver.P_compile.Tables.dr_main_init);
  Shard.start t;
  let rec drive () =
    if Shard.events_processed t >= max_blocks then false
    else if Shard.quiesce ~timeout_s:0.1 t then true
    else drive ()
  in
  let quiescent = drive () in
  let outcome =
    match Shard.stop t with
    | st -> Ok st
    | exception Exec.Runtime_error msg -> Error msg
  in
  let st = match outcome with Ok st -> st | Error _ -> Shard.stats t in
  (match stats_oc with
  | None -> ()
  | Some oc ->
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let fields =
          [ ("schema", P_obs.Json.String "p-sim-stats/1");
            ("machine", P_obs.Machine_info.json ());
            ("shards", P_obs.Json.Int st.Shard.sh_shards);
            ("quiescent", P_obs.Json.Bool quiescent);
            ( "status",
              P_obs.Json.String
                (match outcome with Ok _ -> "ok" | Error m -> m) );
            ("machines", P_obs.Json.Int st.Shard.sh_machines);
            ("events", P_obs.Json.Int st.Shard.sh_dequeues);
            ("sends", P_obs.Json.Int st.Shard.sh_sends);
            ("spawns", P_obs.Json.Int st.Shard.sh_spawns);
            ("activations", P_obs.Json.Int st.Shard.sh_activations);
            ("yields", P_obs.Json.Int st.Shard.sh_yields);
            ("shed_mailbox", P_obs.Json.Int st.Shard.sh_shed_mailbox);
            ("shed_ingress", P_obs.Json.Int st.Shard.sh_shed_ingress);
            ("dead_letters", P_obs.Json.Int st.Shard.sh_dead_letters);
            ("xfer_batches", P_obs.Json.Int st.Shard.sh_xfer_batches);
            ("xfer_msgs", P_obs.Json.Int st.Shard.sh_xfer_msgs);
            ("ingress_batches", P_obs.Json.Int st.Shard.sh_ingress_batches);
            ("ingress_msgs", P_obs.Json.Int st.Shard.sh_ingress_msgs);
            ("pending", P_obs.Json.Int st.Shard.sh_pending) ]
        in
        let fields =
          match faults with
          | None -> fields
          | Some p ->
            fields
            @ [ ( "faults",
                  P_obs.Json.Obj
                    [ ("spec", P_obs.Json.String (P_host.Faults.to_string p));
                      ("seed", P_obs.Json.Int p.P_semantics.Fault.seed);
                      ( "injected",
                        P_host.Faults.json_of_summary (P_host.Faults.summary st)
                      ) ] ) ]
        in
        let fields =
          match metrics with
          | None -> fields
          | Some reg -> fields @ [ ("metrics", P_obs.Metrics.dump reg) ]
        in
        output_string oc (P_obs.Json.to_string_pretty (P_obs.Json.Obj fields));
        output_char oc '\n'));
  (match outcome with
  | Ok _ ->
    Fmt.pr
      "sharded simulation: %s after %d event(s) on %d shard(s) (%d machine(s) \
       live, %d send(s), %d spawn(s), %d cross-shard message(s), %d shed)@."
      (if quiescent then "quiescent" else "block budget exhausted")
      st.Shard.sh_dequeues st.Shard.sh_shards st.Shard.sh_machines
      st.Shard.sh_sends st.Shard.sh_spawns st.Shard.sh_xfer_msgs
      (st.Shard.sh_shed_mailbox + st.Shard.sh_shed_ingress);
    if faults <> None then
      Fmt.pr "adversarial host: %a@." P_host.Faults.pp_summary
        (P_host.Faults.summary st)
  | Error msg ->
    Fmt.pr "sharded simulation: error: %s@." msg;
    exit 1)

let run_simulate file example max_blocks seed faults fault_seed show_trace
    trace_out shards stats_json =
  let faults = resolve_faults faults fault_seed in
  match shards with
  | Some n when n >= 1 ->
    if show_trace || trace_out <> None then
      or_die (Error "--trace/--trace-out are not supported with --shards");
    let program = or_die (load_program file example) in
    run_simulate_sharded program n max_blocks seed faults stats_json
  | Some _ -> or_die (Error "--shards must be at least 1")
  | None ->
  let program = or_die (load_program file example) in
  match P_static.Check.run program with
  | { diagnostics = (_ :: _) as ds; _ } ->
    Fmt.pr "%a@." P_static.Check.pp_diagnostics ds;
    exit 1
  | { symtab; _ } ->
    let policy =
      match seed with
      | None -> P_semantics.Simulate.policy_const false
      | Some s -> P_semantics.Simulate.policy_seeded s
    in
    let r = P_semantics.Simulate.run ~max_blocks ~policy ?faults symtab in
    (match trace_out with
    | None -> ()
    | Some path ->
      let oc = open_out_or_die path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          let sink = P_obs.Sink.chrome oc in
          P_obs.Sem_trace.emit sink r.trace;
          P_obs.Sink.close sink));
    if show_trace then Fmt.pr "%a@." P_semantics.Trace.pp r.trace;
    Fmt.pr "simulation: %a after %d atomic blocks@." P_semantics.Simulate.pp_status
      r.status r.blocks;
    (match r.status with P_semantics.Simulate.Error _ -> exit 1 | _ -> ())

let simulate_cmd =
  let max_blocks =
    Arg.(value & opt int 10_000 & info [ "max-blocks" ] ~doc:"Atomic-block budget.")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~doc:"Resolve ghost choices pseudo-randomly from this seed.")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the execution trace.") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the execution trace as Chrome trace_event JSON to $(docv).")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Execute on the effects-based sharded serving runtime with N \
             scheduler domains instead of the semantics interpreter \
             (ghost choices need $(b,--seed); the block budget counts \
             events processed).")
  in
  let stats_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "With $(b,--shards): write runtime counters (events, sends, \
             sheds, cross-shard traffic, the runtime.* metrics) as JSON \
             to $(docv).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Deterministic causal (d=0) execution of the closed program.")
    Term.(
      const run_simulate $ file_arg $ example_arg $ max_blocks $ seed
      $ faults_arg $ fault_seed_arg $ trace $ trace_out $ shards $ stats_json)

(* ---------------- erase / compile / print ---------------- *)

let run_erase file example =
  let program = or_die (load_program file example) in
  match P_static.Check.run program with
  | { diagnostics = (_ :: _) as ds; _ } ->
    Fmt.pr "%a@." P_static.Check.pp_diagnostics ds;
    exit 1
  | { symtab; _ } ->
    print_string (P_syntax.Pretty.program_to_string (P_static.Erasure.erase symtab))

let erase_cmd =
  Cmd.v
    (Cmd.info "erase" ~doc:"Print the compiled program after ghost erasure.")
    Term.(const run_erase $ file_arg $ example_arg)

let run_compile file example output =
  let program = or_die (load_program file example) in
  match P_compile.Compile.to_c program with
  | c -> (
    match output with
    | None -> print_string c
    | Some path ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc c);
      Fmt.pr "wrote %s (%d bytes)@." path (String.length c))
  | exception P_compile.Compile.Error msg ->
    Fmt.epr "pc: %s@." msg;
    exit 1

let compile_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output C file.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile to table-driven C source (section 4 of the paper).")
    Term.(const run_compile $ file_arg $ example_arg $ output)

let run_graph file example machine_filter =
  let program = or_die (load_program file example) in
  match machine_filter with
  | None -> print_string (P_compile.Dot_emit.emit program)
  | Some name -> (
    match P_syntax.Ast.find_machine program (P_syntax.Names.Machine.of_string name) with
    | Some m -> print_string (P_compile.Dot_emit.emit_one m)
    | None ->
      Fmt.epr "pc: no machine named %s@." name;
      exit 2)

let graph_cmd =
  let machine =
    Arg.(
      value
      & opt (some string) None
      & info [ "machine" ] ~docv:"NAME" ~doc:"Render only this machine.")
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Render the state machines as a Graphviz (DOT) diagram.")
    Term.(const run_graph $ file_arg $ example_arg $ machine)

let run_coverage file example delay_bound max_states include_ghost =
  let program = or_die (load_program file example) in
  match P_static.Check.run program with
  | { diagnostics = (_ :: _) as ds; _ } ->
    Fmt.pr "%a@." P_static.Check.pp_diagnostics ds;
    exit 1
  | { symtab; _ } ->
    let cov = P_checker.Coverage.of_exploration ~delay_bound ~max_states symtab in
    Fmt.pr "%a@." P_checker.Coverage.pp_report
      (P_checker.Coverage.report ~include_ghost cov)

let coverage_cmd =
  let delay =
    Arg.(value & opt int 2 & info [ "d"; "delay-bound" ] ~doc:"Delay bound for the sweep.")
  in
  let max_states =
    Arg.(value & opt int 100_000 & info [ "max-states" ] ~doc:"State budget.")
  in
  let ghost = Arg.(value & flag & info [ "ghost" ] ~doc:"Include ghost machines.") in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Report which states and handlers the bounded exploration exercises.")
    Term.(const run_coverage $ file_arg $ example_arg $ delay $ max_states $ ghost)

(* ---------------- replay / shrink ---------------- *)

let trace_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE" ~doc:"Counterexample trace artifact (JSONL, from pc verify).")

let program_override =
  Arg.(
    value
    & opt (some file) None
    & info [ "program" ] ~docv:"FILE"
        ~doc:
          "Parse $(docv) instead of the program recorded in the trace's \
           provenance header.")

let load_trace path = or_die (P_checker.Trace_file.read_file path)

(* Resolve the program a trace belongs to: explicit --program/--example
   override the artifact's provenance header. *)
let program_of_trace (t : P_checker.Trace_file.t) file example =
  match (file, example) with
  | Some _, _ | _, Some _ -> or_die (load_program file example)
  | None, None -> (
    let strip prefix p =
      if String.starts_with ~prefix p then
        Some (String.sub p (String.length prefix) (String.length p - String.length prefix))
      else None
    in
    match t.program with
    | None ->
      or_die (Error "trace does not record its program; give --program or --example")
    | Some p -> (
      match (strip "example:" p, strip "file:" p) with
      | Some name, _ -> or_die (load_program None (Some name))
      | _, Some path -> or_die (load_program (Some path) None)
      | None, None ->
        or_die
          (Error
             (Fmt.str "unrecognised program provenance %S; give --program or --example" p))))

let symtab_of_program program =
  match P_static.Check.run program with
  | { diagnostics = (_ :: _) as ds; _ } ->
    Fmt.pr "%a@." P_static.Check.pp_diagnostics ds;
    exit 1
  | { symtab; _ } -> symtab

let run_replay trace_path file example no_digests show_trace differential =
  let t = load_trace trace_path in
  let symtab = symtab_of_program (program_of_trace t file example) in
  Fmt.pr "replaying %s: %a@." trace_path P_checker.Trace_file.pp_summary t;
  let r = P_checker.Replay.run ~check_digests:(not no_digests) symtab t in
  if show_trace then Fmt.pr "%a@." P_semantics.Trace.pp r.items;
  Fmt.pr "%a@." P_checker.Replay.pp_outcome r.outcome;
  (match r.outcome with P_checker.Replay.Diverged _ -> exit 1 | _ -> ());
  if differential then begin
    match P_checker.Differential.check_trace symtab t with
    | Error e ->
      Fmt.epr "pc: differential: %s@." e;
      exit 1
    | Ok o ->
      Fmt.pr "differential: %a@." P_checker.Differential.pp_outcome o;
      (match o with P_checker.Differential.Mismatch _ -> exit 1 | _ -> ())
  end

let replay_cmd =
  let no_digests =
    Arg.(
      value & flag
      & info [ "no-digests" ]
          ~doc:
            "Skip the per-step configuration fingerprint checks (verdict \
             reproduction only).")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the replayed trace.") in
  let differential =
    Arg.(
      value & flag
      & info [ "differential" ]
          ~doc:
            "Additionally drive the schedule through the compiled runtime \
             tables and cross-check every machine state against the \
             interpreter.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a recorded counterexample deterministically, checking \
          the verdict and every configuration fingerprint.")
    Term.(
      const run_replay $ trace_arg $ program_override $ example_arg $ no_digests
      $ trace $ differential)

let run_shrink trace_path file example output =
  let t = load_trace trace_path in
  let symtab = symtab_of_program (program_of_trace t file example) in
  Fmt.pr "shrinking %s: %a@." trace_path P_checker.Trace_file.pp_summary t;
  match P_checker.Shrink.run symtab t with
  | Error e ->
    Fmt.epr "pc: %s@." e;
    exit 1
  | Ok (shrunk, stats) ->
    let out =
      match output with
      | Some o -> o
      | None -> Filename.remove_extension trace_path ^ ".min.jsonl"
    in
    P_checker.Trace_file.write_file out shrunk;
    Fmt.pr "shrink: %a@." P_checker.Shrink.pp_stats stats;
    Fmt.pr "wrote %s (replay with: pc replay %s)@." out out

let shrink_cmd =
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Output trace file (default: TRACE with a .min.jsonl suffix).")
  in
  Cmd.v
    (Cmd.info "shrink"
       ~doc:
         "Minimize a counterexample trace with delta debugging: remove \
          schedule steps and simplify ghost choices while the same error \
          still reproduces.")
    Term.(const run_shrink $ trace_arg $ program_override $ example_arg $ output)

let run_print file example =
  let program = or_die (load_program file example) in
  print_string (P_syntax.Pretty.program_to_string program)

let print_cmd =
  Cmd.v
    (Cmd.info "print" ~doc:"Parse and pretty-print the program.")
    Term.(const run_print $ file_arg $ example_arg)

let () =
  let info = Cmd.info "pc" ~version:"1.0.0" ~doc:"The P language compiler and verifier." in
  exit
    (Cmd.eval
       (Cmd.group info
          [ check_cmd; verify_cmd; replay_cmd; shrink_cmd; simulate_cmd; erase_cmd;
            compile_cmd; print_cmd; graph_cmd; coverage_cmd; random_cmd ]))
