(** Lowering an erased (real-only) P program to the table IR of
    {!Tables}. The input must have passed {!P_static.Check} and
    {!P_static.Erasure}: ghost machines and the nondeterministic [*]
    expression are refused. *)

exception Not_compilable of string

val lower : ?name:string -> P_syntax.Ast.program -> Tables.driver
(** Compile to driver tables; [name] labels the driver (default
    ["driver"]). Raises {!Not_compilable} on surviving ghost fragments or
    dangling names. *)
