lib/syntax/ast.ml: List Loc Names Ptype
