(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablations called out in DESIGN.md, and a Bechamel
   micro-benchmark suite for the engine primitives.

   Usage:  dune exec bench/main.exe            (all experiments, bounded)
           dune exec bench/main.exe -- fig7    (Figure 7 sweep)
           dune exec bench/main.exe -- bugs    (bug-finding at low delay bounds)
           dune exec bench/main.exe -- fig8    (Figure 8 table + per-store deep run;
                                                --store exact|compact|bitstate
                                                selects one store, --smoke shrinks
                                                the budgets to CI scale)
           dune exec bench/main.exe -- overhead (section 4.1 comparison)
           dune exec bench/main.exe -- ablation (design-choice ablations)
           dune exec bench/main.exe -- digest-throughput
                                               (incremental vs full fingerprints)
           dune exec bench/main.exe -- scaling (work-stealing engine across domains)
           dune exec bench/main.exe -- load    (open-loop serving load on the
                                                sharded runtime; --machines N,
                                                --events N, --rate HZ, --shards N
                                                pin one cell, --smoke shrinks
                                                the budgets)
           dune exec bench/main.exe -- reduce  (state-space reduction: sleep-set
                                                POR + symmetry across the example
                                                suite and the USB stack; --smoke
                                                shrinks the budgets)
           dune exec bench/main.exe -- faults  (adversarial host: fault-injected
                                                verdicts/states per protocol
                                                family x fault class, plus the
                                                serving runtime's injection
                                                counters; --smoke shrinks the
                                                budgets)
           dune exec bench/main.exe -- protocol-scaling
                                               (German's directory with n clients)
           dune exec bench/main.exe -- micro   (Bechamel micro-benchmarks)

   Absolute numbers will differ from the paper's 2013 testbed (Zing on a
   multicore Windows box, hours-long runs); the *shape* of each result is
   the reproduction target. Budgets are sized so the default run finishes
   in a few minutes. *)

open P_checker
module Json = P_obs.Json

let line fmt = Fmt.pr (fmt ^^ "@.")
let hr () = line "%s" (String.make 78 '-')

let tab_of p = P_static.Check.run_exn p

(* Every experiment records its numbers here; [--json FILE] writes them all
   as one document (BENCH_results.json in the paper-reproduction workflow). *)
let results : (string * Json.t) list ref = ref []

let record key json = results := (key, json) :: !results

let write_results path =
  let doc =
    Json.Obj
      [ ("schema", Json.String "p-bench/1");
        (* machine context (cores, OCaml version, word size, git rev): every
           number in this document is meaningless without it, and [compare]
           warns when two documents came from different machines *)
        ("machine", P_obs.Machine_info.json ());
        ("results", Json.Obj (List.rev !results)) ]
  in
  Out_channel.with_open_bin path (fun oc ->
      output_string oc (Json.to_string_pretty doc);
      output_char oc '\n')

let json_of_stats (s : Search.stats) : Json.t =
  Json.Obj
    [ ("states", Json.Int s.states);
      ("transitions", Json.Int s.transitions);
      ("max_depth", Json.Int s.max_depth);
      ("truncated", Json.Bool s.truncated);
      ("elapsed_s", Json.Float s.elapsed_s) ]

(* ------------------------------------------------------------------ *)
(* Figure 7: states explored with increasing delay bound               *)
(* ------------------------------------------------------------------ *)

let fig7_benchmarks () =
  [ ("Elevator", tab_of (P_examples_lib.Elevator.program ()));
    ("Switch-LED", tab_of (P_examples_lib.Switch_led.program ()));
    ("German", tab_of (P_examples_lib.German.program ())) ]

let fig7 ?(max_states = 400_000) ?(bounds = [ 0; 1; 2; 3; 4; 5; 6; 8; 10; 12 ]) () =
  line "== Figure 7: states explored vs delay bound ==";
  line "   (paper: states grow with d and saturate; its plot scales Elevator x100";
  line "    and Switch-LED x10 for legibility — raw counts below)";
  let benchmarks = fig7_benchmarks () in
  line "%-12s %s" "d"
    (String.concat " " (List.map (fun (n, _) -> Fmt.str "%14s" n) benchmarks));
  let rows = ref [] in
  List.iter
    (fun d ->
      let cells =
        List.map
          (fun (name, tab) ->
            let r = Delay_bounded.explore ~delay_bound:d ~max_states tab in
            rows :=
              Json.Obj
                [ ("benchmark", Json.String name);
                  ("delay_bound", Json.Int d);
                  ("stats", json_of_stats r.stats) ]
              :: !rows;
            Fmt.str "%13d%s" r.stats.states (if r.stats.truncated then "+" else " "))
          benchmarks
      in
      line "%-12d %s" d (String.concat " " cells))
    bounds;
  line "(+ marks exploration truncated at the %d-state budget)" max_states;
  record "fig7" (Json.List (List.rev !rows))

(* ------------------------------------------------------------------ *)
(* Bug finding at low delay bounds (section 5, empirical results)      *)
(* ------------------------------------------------------------------ *)

let bugs () =
  line "== Seeded bugs: smallest delay bound that finds each ==";
  line "   (paper: \"bugs are found within a delay bound of 2\")";
  line "%-14s %-8s %-10s %-8s %s" "benchmark" "found@d" "states" "depth" "error";
  let rows = ref [] in
  List.iter
    (fun (name, p) ->
      let tab = tab_of p in
      let rec try_bound d =
        if d > 4 then begin
          line "%-14s NOT FOUND within d<=4" name;
          rows :=
            Json.Obj [ ("benchmark", Json.String name); ("found_at", Json.Null) ]
            :: !rows
        end
        else
          let r = Delay_bounded.explore ~delay_bound:d ~max_states:500_000 tab in
          match r.verdict with
          | Search.Error_found ce ->
            line "%-14s %-8d %-10d %-8d %a" name d r.stats.states ce.depth
              P_semantics.Errors.pp_kind ce.error.kind;
            rows :=
              Json.Obj
                [ ("benchmark", Json.String name);
                  ("found_at", Json.Int d);
                  ("depth", Json.Int ce.depth);
                  ( "error",
                    Json.String
                      (Fmt.str "%a" P_semantics.Errors.pp_kind ce.error.kind) );
                  ("stats", json_of_stats r.stats) ]
              :: !rows
          | Search.No_error -> try_bound (d + 1)
      in
      try_bound 0)
    [ ("elevator", P_examples_lib.Elevator.buggy_program ());
      ("switch-led", P_examples_lib.Switch_led.buggy_program ());
      ("german", P_examples_lib.German.buggy_program ());
      ("pingpong", P_examples_lib.Pingpong.buggy_program ());
      ("tokenring", P_examples_lib.Token_ring.buggy_program ());
      ("boundedbuffer", P_examples_lib.Bounded_buffer.buggy_program ());
      ("usb-stack", P_usb.Stack.buggy_program ()) ];
  record "bugs" (Json.List (List.rev !rows))

(* ------------------------------------------------------------------ *)
(* Figure 8: the USB case-study machines                               *)
(* ------------------------------------------------------------------ *)

let fig8 ?(max_states = 250_000) ?(delay_bound = 1) () =
  line "== Figure 8: state machine sizes and exploration ==";
  line
    "   (paper, hours-scale: HSM 196/361 -> 5.9M states; PSM3.0 295/752 -> 1.5M;";
  line
    "    PSM2.0 457/1386 -> 2.2M; DSM 1919/4238 -> 1.2M; ours uses a %d-state"
    max_states;
  line "    budget per machine and reports throughput for extrapolation)";
  line "%-8s %8s %13s %10s %10s %10s %12s" "machine" "P states" "P transitions"
    "explored" "time(s)" "alloc MB" "states/s";
  let rows = ref [] in
  List.iter
    (fun spec ->
      let p = P_usb.Gen.program_of_spec spec in
      let m =
        List.find (fun (m : P_syntax.Ast.machine) -> not m.machine_ghost) p.machines
      in
      let tab = tab_of p in
      Gc.compact ();
      let before = Gc.stat () in
      let r = Delay_bounded.explore ~delay_bound ~max_states tab in
      let after = Gc.stat () in
      (* allocation volume over the run: the paper reports resident memory of
         hours-long Zing runs; allocation tracks the same growth per state *)
      let heap_mb =
        (after.Gc.minor_words +. after.Gc.major_words -. after.Gc.promoted_words
        -. (before.Gc.minor_words +. before.Gc.major_words -. before.Gc.promoted_words))
        *. float_of_int (Sys.word_size / 8)
        /. 1e6
      in
      line "%-8s %8d %13d %9d%s %10.2f %10.1f %12.0f" spec.P_usb.Gen.name
        (P_syntax.Ast.machine_state_count m)
        (P_syntax.Ast.machine_transition_count m)
        r.stats.states
        (if r.stats.truncated then "+" else " ")
        r.stats.elapsed_s heap_mb
        (float_of_int r.stats.states /. r.stats.elapsed_s);
      rows :=
        Json.Obj
          [ ("machine", Json.String spec.P_usb.Gen.name);
            ("p_states", Json.Int (P_syntax.Ast.machine_state_count m));
            ("p_transitions", Json.Int (P_syntax.Ast.machine_transition_count m));
            ("alloc_mb", Json.Float heap_mb);
            ("stats", json_of_stats r.stats) ]
        :: !rows)
    P_usb.Gen.all_specs;
  line
    "(+ = budget hit: the space is larger, like the paper's millions; multiply\n\
    \ states/s by the paper's runtimes to compare scale)";
  record "fig8" (Json.List (List.rev !rows))

(* Figure 8, continued: one paper-scale exploration of the USB stack per
   state store. The paper's table reaches millions of states on an
   hours-scale testbed; the compact store holds a run of that class in a
   flat off-heap fingerprint arena (no per-state heap allocation, several
   times fewer bytes per state than the exact hashtable), and bitstate
   reports an explicit omission bound for the states it may merge away.
   Every row records the store's measured footprint so [bench compare]
   gates memory, not just wall clock. *)
let store_kinds = [ State_store.Exact; State_store.Compact; State_store.Bitstate ]

let fig8_stores ?(max_states = 1_050_000) ?(delay_bound = 1)
    ?(stores = store_kinds) () =
  line "== Figure 8 (deep): USB stack, one run per state store ==";
  line "   (d=%d, %d-state budget; 'vs exact' is the bytes-per-state reduction"
    delay_bound max_states;
  line "    relative to the exact store's hashtable footprint)";
  let tab = tab_of (P_usb.Stack.program ()) in
  line "%-9s %9s %12s %8s %10s %9s %8s %9s" "store" "explored" "transitions"
    "time(s)" "states/s" "store MB" "B/state" "vs exact";
  let exact_bps = ref 0.0 in
  let rows = ref [] in
  List.iter
    (fun store ->
      let r = Delay_bounded.explore ~store ~delay_bound ~max_states tab in
      let st =
        match r.stats.store with
        | Some st -> st
        | None -> Fmt.failwith "run carries no store summary"
      in
      let bps =
        if r.stats.states = 0 then 0.0
        else float_of_int st.State_store.s_bytes /. float_of_int r.stats.states
      in
      if store = State_store.Exact then exact_bps := bps;
      let reduction =
        if bps > 0.0 && !exact_bps > 0.0 then !exact_bps /. bps else 0.0
      in
      line "%-9s %8d%s %12d %8.2f %10.0f %9.1f %8.1f %9s"
        (State_store.kind_to_string store)
        r.stats.states
        (if r.stats.truncated then "+" else " ")
        r.stats.transitions r.stats.elapsed_s
        (float_of_int r.stats.states /. r.stats.elapsed_s)
        (float_of_int st.State_store.s_bytes /. 1e6)
        bps
        (if reduction > 0.0 && store <> State_store.Exact then
           Fmt.str "%.1fx" reduction
         else "-");
      rows :=
        Json.Obj
          ([ ("store", Json.String (State_store.kind_to_string store));
             ("stats", json_of_stats r.stats);
             ( "store_mb",
               Json.Float (float_of_int st.State_store.s_bytes /. 1e6) );
             ("bytes_per_state", Json.Float bps);
             ("occupancy", Json.Float st.State_store.s_occupancy);
             ("omission_bound", Json.Float st.State_store.s_omission_bound);
             ("lossy_dups", Json.Int st.State_store.s_lossy_dups) ]
          @
          if reduction > 0.0 && store <> State_store.Exact then
            [ ("reduction_vs_exact", Json.Float reduction) ]
          else [])
        :: !rows)
    stores;
  record "fig8_store" (Json.List (List.rev !rows))

(* ------------------------------------------------------------------ *)
(* Section 4.1: generated-driver efficiency                            *)
(* ------------------------------------------------------------------ *)

let overhead ?(events = 2_000) () =
  line "== Section 4.1: P-generated vs hand-written switch-LED driver ==";
  line "   (paper: both process 100 events/s at ~4 ms/event, i.e. the P runtime";
  line "    adds no overhead to device-bound work; we measure the dispatch cost";
  line "    itself, and against a simulated 4 ms device budget)";
  let make_event i = P_host.Os_events.Interrupt { line = "switch"; data = i mod 2 } in
  let rows = ref [] in
  let run name driver (device : P_examples_lib.Switch_led.device) =
    let stats = P_host.Workload.run ~rate_hz:100 ~events ~make_event driver in
    let budget_ns = 4e6 (* the paper's 4 ms/event processing time *) in
    line "%-22s %a" name P_host.Workload.pp_stats stats;
    line "%-22s -> %.5f%% of a 4 ms device-bound event" ""
      (100.0 *. stats.mean_ns /. budget_ns);
    rows :=
      Json.Obj
        [ ("driver", Json.String name);
          ("events", Json.Int stats.events);
          ("mean_ns", Json.Float stats.mean_ns);
          ("p99_ns", Json.Float stats.p99_ns);
          ("max_ns", Json.Float stats.max_ns);
          ("budget_fraction", Json.Float (stats.mean_ns /. budget_ns)) ]
      :: !rows;
    device.writes
  in
  let dev_p = P_examples_lib.Switch_led.new_device () in
  let writes_p = run "P-generated driver" (P_examples_lib.Switch_led.p_driver dev_p) dev_p in
  let dev_h = P_examples_lib.Switch_led.new_device () in
  let writes_h =
    run "hand-written driver" (P_examples_lib.Switch_led.handwritten_driver dev_h) dev_h
  in
  line "device writes: P=%d hand=%d (identical behaviour: %b)" writes_p writes_h
    (writes_p = writes_h);
  line "code size: P source %d machine states vs ~6000 lines of raw KMDF C in the paper"
    (P_syntax.Ast.program_state_count (P_examples_lib.Switch_led.program ()));
  record "overhead"
    (Json.Obj
       [ ("drivers", Json.List (List.rev !rows));
         ("writes_p", Json.Int writes_p);
         ("writes_hand", Json.Int writes_h);
         ("identical", Json.Bool (writes_p = writes_h)) ])

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md)                                               *)
(* ------------------------------------------------------------------ *)

let ablation ?(max_states = 150_000) () =
  line "== Ablation 1: delay bounding vs depth bounding ==";
  line "   (paper section 1: depth-bounded search blows up with execution depth;";
  line "    delay bounding reaches deep executions cheaply)";
  let ab1 = ref [] in
  let ab1_row name stats =
    ab1 :=
      Json.Obj [ ("search", Json.String name); ("stats", json_of_stats stats) ]
      :: !ab1
  in
  let tab = tab_of (P_examples_lib.German.program ()) in
  line "%-28s %10s %10s %10s" "search" "states" "max depth" "time(s)";
  let d0 = Delay_bounded.explore ~delay_bound:0 ~max_states tab in
  line "%-28s %10d %10d %10.2f" "delay-bounded d=0" d0.stats.states d0.stats.max_depth
    d0.stats.elapsed_s;
  ab1_row "delay-bounded d=0" d0.stats;
  let d2 = Delay_bounded.explore ~delay_bound:2 ~max_states tab in
  line "%-28s %9d%s %10d %10.2f" "delay-bounded d=2" d2.stats.states
    (if d2.stats.truncated then "+" else " ")
    d2.stats.max_depth d2.stats.elapsed_s;
  ab1_row "delay-bounded d=2" d2.stats;
  List.iter
    (fun k ->
      let r = Depth_bounded.explore ~depth_bound:k ~max_states tab in
      line "%-28s %9d%s %10d %10.2f"
        (Fmt.str "depth-bounded k=%d" k)
        r.stats.states
        (if r.stats.truncated then "+" else " ")
        r.stats.max_depth r.stats.elapsed_s;
      ab1_row (Fmt.str "depth-bounded k=%d" k) r.stats)
    [ 10; 14; 18 ];
  line "-> at equal budgets, depth bounding exhausts the budget at a fraction of";
  line "   the execution depth that d=0 reaches for free";
  hr ();
  line "== Ablation 2: causal vs round-robin delaying scheduler ==";
  let ab2 = ref [] in
  let tab_b = tab_of (P_examples_lib.Elevator.buggy_program ()) in
  line "%-28s %12s %12s" "scheduler" "bug@d" "states";
  List.iter
    (fun (name, discipline) ->
      let rec find d =
        if d > 6 then begin
          line "%-28s %12s %12s" name "none<=6" "-";
          ab2 :=
            Json.Obj [ ("scheduler", Json.String name); ("found_at", Json.Null) ]
            :: !ab2
        end
        else
          let r =
            Delay_bounded.explore ~discipline ~delay_bound:d ~max_states:500_000 tab_b
          in
          match r.verdict with
          | Search.Error_found _ ->
            line "%-28s %12d %12d" name d r.stats.states;
            ab2 :=
              Json.Obj
                [ ("scheduler", Json.String name);
                  ("found_at", Json.Int d);
                  ("states", Json.Int r.stats.states) ]
              :: !ab2
          | Search.No_error -> find (d + 1)
      in
      find 0)
    [ ("causal (paper)", Delay_bounded.Causal);
      ("round-robin (Emmi et al.)", Delay_bounded.Round_robin) ];
  hr ();
  line "== Ablation 3: the deduplicating queue append (the ⊕ operator) ==";
  let ab3 = ref [] in
  let tab_e = tab_of (P_examples_lib.Elevator.program ()) in
  List.iter
    (fun (name, dedup) ->
      let r = Delay_bounded.explore ~dedup ~delay_bound:1 ~max_states tab_e in
      line "%-28s %9d%s states, %d transitions, closure: %b" name r.stats.states
        (if r.stats.truncated then "+" else " ")
        r.stats.transitions (not r.stats.truncated);
      ab3 :=
        Json.Obj
          [ ("append", Json.String name);
            ("closes", Json.Bool (not r.stats.truncated));
            ("stats", json_of_stats r.stats) ]
        :: !ab3)
    [ ("with (+) dedup (paper)", true); ("plain FIFO append", false) ];
  line "-> without the dedup append the ghost user floods the elevator queue: the";
  line "   state space never closes (the paper motivates it with hardware events)";
  hr ();
  line "== Ablation 4: systematic (delay-bounded) vs random-walk testing ==";
  line "%-16s %-28s %s" "benchmark" "delay-bounded (d<=2)" "random walks (100 x 500 blocks)";
  let ab4 = ref [] in
  List.iter
    (fun (name, p) ->
      let tab = tab_of p in
      let rec sys d =
        if d > 2 then ("not found", 0)
        else
          let r = Delay_bounded.explore ~delay_bound:d ~max_states:500_000 tab in
          match r.verdict with
          | Search.Error_found _ -> (Fmt.str "found@@d=%d" d, r.stats.transitions)
          | Search.No_error -> sys (d + 1)
      in
      let sys_msg, sys_blocks = sys 0 in
      let rw = Random_walk.run ~walks:100 ~max_blocks:500 ~seed:11 tab in
      line "%-16s %-12s %5d blocks     %d/100 walks failing, %d blocks" name sys_msg
        sys_blocks rw.errors_found rw.total_blocks;
      ab4 :=
        Json.Obj
          [ ("benchmark", Json.String name);
            ("systematic", Json.String sys_msg);
            ("systematic_blocks", Json.Int sys_blocks);
            ("random_failing_walks", Json.Int rw.errors_found);
            ("random_blocks", Json.Int rw.total_blocks) ]
        :: !ab4)
    [ ("elevator", P_examples_lib.Elevator.buggy_program ());
      ("german", P_examples_lib.German.buggy_program ());
      ("usb-stack", P_usb.Stack.buggy_program ()) ];
  record "ablation"
    (Json.Obj
       [ ("delay_vs_depth", Json.List (List.rev !ab1));
         ("causal_vs_round_robin", Json.List (List.rev !ab2));
         ("dedup_append", Json.List (List.rev !ab3));
         ("systematic_vs_random", Json.List (List.rev !ab4)) ])

let protocol_scaling ?(max_states = 2_000_000) () =
  line "== Protocol scaling: German's directory with n clients ==";
  line "   (the per-client sharer flags and request interleavings compound:";
  line "    the classic exponential growth that motivates bounded exploration)";
  line "%-4s %12s %12s %10s %8s" "n" "d=0 states" "d=1 states" "bug@d=0" "time(s)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let tab = tab_of (P_examples_lib.German.program ~n ()) in
      let r0 = Delay_bounded.explore ~delay_bound:0 ~max_states tab in
      let r1 = Delay_bounded.explore ~delay_bound:1 ~max_states tab in
      let tabb = tab_of (P_examples_lib.German.buggy_program ~n ()) in
      let rb = Delay_bounded.explore ~delay_bound:0 ~max_states tabb in
      line "%-4d %11d%s %11d%s %10s %8.2f" n r0.stats.states
        (if r0.stats.truncated then "+" else " ")
        r1.stats.states
        (if r1.stats.truncated then "+" else " ")
        (match rb.verdict with
        | Search.Error_found ce -> Fmt.str "depth %d" ce.depth
        | Search.No_error -> "missed")
        (r0.stats.elapsed_s +. r1.stats.elapsed_s);
      rows :=
        Json.Obj
          [ ("clients", Json.Int n);
            ("d0", json_of_stats r0.stats);
            ("d1", json_of_stats r1.stats);
            ( "bug_depth",
              match rb.verdict with
              | Search.Error_found ce -> Json.Int ce.depth
              | Search.No_error -> Json.Null ) ]
        :: !rows)
    [ 2; 3; 4 ];
  record "protocol_scaling" (Json.List (List.rev !rows))

(* The work-stealing engine's scaling sweep (section 6: "using multicores to
   scale the state exploration"): german and elevator at delay bounds 2-4,
   across 1/2/4/8 domains. Each (benchmark, bound) cell asserts the
   determinism contract — the (verdict, states, transitions) triple must be
   byte-identical at every domain count — and reports speedup relative to
   the single-domain run. On a single-core host the sweep still validates
   determinism; the speedups it records are honestly ~1x or below, the
   record is marked ["valid_parallelism": false], and under
   [~require_multicore:true] the sweep fails outright — so CI on a 1-core
   runner can never greenlight (or publish) a bogus scaling claim. *)
let parallel_scaling ?(max_states = 2_000_000) ?(domain_counts = [ 1; 2; 4; 8 ])
    ?(bounds = [ 2; 3; 4 ]) ?(require_multicore = false) () =
  line "== Multicore scaling: work-stealing exploration across domains ==";
  let cores = Domain.recommended_domain_count () in
  line "   this machine reports %d core(s)%s" cores
    (if cores <= 1 then
       " — runs below demonstrate cross-domain determinism, not speedup"
     else "");
  let triple (r : Search.result) =
    ( (match r.verdict with
      | Search.Error_found ce -> Some ce.depth
      | Search.No_error -> None),
      r.stats.states,
      r.stats.transitions )
  in
  let subjects =
    [ ("german", tab_of (P_examples_lib.German.program ~n:3 ~requests:2 ()));
      ("elevator", tab_of (P_examples_lib.Elevator.program ())) ]
  in
  let rows = ref [] in
  let all_identical = ref true in
  List.iter
    (fun (name, tab) ->
      List.iter
        (fun delay_bound ->
          line "%-10s d=%d" name delay_bound;
          let base = ref 0.0 in
          let base_triple = ref None in
          let identical = ref true in
          let runs = ref [] in
          List.iter
            (fun domains ->
              let r = Parallel.explore ~domains ~delay_bound ~max_states tab in
              if domains = 1 then begin
                base := r.stats.elapsed_s;
                base_triple := Some (triple r)
              end
              else if !base_triple <> Some (triple r) then identical := false;
              let speedup = !base /. r.stats.elapsed_s in
              line "  %2d domain(s): %8d states %9d transitions in %6.2fs  (speedup %.2fx)"
                domains r.stats.states r.stats.transitions r.stats.elapsed_s
                speedup;
              runs :=
                Json.Obj
                  [ ("domains", Json.Int domains);
                    ("speedup", Json.Float speedup);
                    ("stats", json_of_stats r.stats) ]
                :: !runs)
            domain_counts;
          if not !identical then begin
            all_identical := false;
            line "  !! DETERMINISM VIOLATION: triples differ across domain counts"
          end;
          rows :=
            Json.Obj
              [ ("benchmark", Json.String name);
                ("delay_bound", Json.Int delay_bound);
                ("triple_identical", Json.Bool !identical);
                ("runs", Json.List (List.rev !runs)) ]
            :: !rows)
        bounds)
    subjects;
  line "(verdict, states, transitions) identical across domain counts: %b"
    !all_identical;
  let valid_parallelism = cores > 1 in
  if not valid_parallelism then
    line
      "   !! single-core host: speedup numbers above are NOT evidence of \
       parallel scaling";
  record "parallel_scaling"
    (Json.Obj
       [ ("cores", Json.Int cores);
         ("valid_parallelism", Json.Bool valid_parallelism);
         ("domain_counts", Json.List (List.map (fun d -> Json.Int d) domain_counts));
         ("triples_identical", Json.Bool !all_identical);
         ("sweeps", Json.List (List.rev !rows)) ]);
  if require_multicore && not valid_parallelism then begin
    line
      "   !! --require-multicore: refusing to report scaling results from a \
       %d-core machine" cores;
    false
  end
  else !all_identical

(* ------------------------------------------------------------------ *)
(* Digest throughput: incremental vs full state fingerprinting         *)
(* ------------------------------------------------------------------ *)

let digest_throughput ?(max_states = 30_000) ?(rounds = 5)
    ?(explore_max = 120_000) () =
  line "== Digest throughput: incremental per-machine cache vs full re-encoding ==";
  line "   (the seen-set key of every engine; incremental mode reuses cached";
  line "    per-machine digests for machines the last block left untouched)";
  let tab = tab_of (P_examples_lib.German.program ()) in
  (* a corpus of reachable configurations, in discovery order: successive
     states of one exploration share untouched machines physically, exactly
     the workload the per-machine cache is built for *)
  let configs = ref [] in
  let observer =
    { Engine.on_state = (fun _ c -> configs := c :: !configs);
      Engine.on_edge = (fun ~src:_ ~src_config:_ ~by:_ ~resolved:_ ~dst:_ -> ()) }
  in
  let spec =
    Engine.spec ~bound:1 ~max_states (Engine.stack_sched Engine.Causal)
  in
  ignore (Engine.run ~observer ~engine:"digest_corpus" spec tab);
  let configs = Array.of_list (List.rev !configs) in
  let n = Array.length configs in
  (* a fresh context per round reproduces an exploration's mix: one miss the
     first time a machine value is seen, hits for every untouched machine *)
  let time_mode mode =
    let started = P_obs.Mclock.start () in
    for _ = 1 to rounds do
      let fp = Fingerprint.create ~mode tab in
      Array.iter (fun c -> ignore (Fingerprint.digest fp c [])) configs
    done;
    float_of_int (n * rounds) /. P_obs.Mclock.elapsed_s started
  in
  let full_rate = time_mode Fingerprint.Full in
  let incr_rate = time_mode Fingerprint.Incremental in
  line "corpus: %d german configurations x %d rounds" n rounds;
  line "  %-22s %12.0f digests/s" "full re-encoding" full_rate;
  line "  %-22s %12.0f digests/s  (%.2fx)" "incremental" incr_rate
    (incr_rate /. full_rate);
  line "end-to-end: parallel explore d=1, %d-state budget" explore_max;
  line "  %-12s %8s %10s %10s %12s" "mode" "domains" "states" "time(s)" "states/s";
  let rows = ref [] in
  List.iter
    (fun mode ->
      List.iter
        (fun domains ->
          let r =
            Parallel.explore ~domains ~delay_bound:1 ~fingerprint:mode
              ~max_states:explore_max tab
          in
          line "  %-12s %8d %10d %10.2f %12.0f"
            (Fingerprint.mode_to_string mode)
            domains r.stats.states r.stats.elapsed_s
            (float_of_int r.stats.states /. r.stats.elapsed_s);
          rows :=
            Json.Obj
              [ ("mode", Json.String (Fingerprint.mode_to_string mode));
                ("domains", Json.Int domains);
                ( "states_per_s",
                  Json.Float (float_of_int r.stats.states /. r.stats.elapsed_s) );
                ("stats", json_of_stats r.stats) ]
            :: !rows)
        [ 1; 2; 4 ])
    [ Fingerprint.Full; Fingerprint.Incremental ];
  record "digest_throughput"
    (Json.Obj
       [ ("benchmark", Json.String "german");
         ("corpus_configs", Json.Int n);
         ("rounds", Json.Int rounds);
         ("full_digests_per_s", Json.Float full_rate);
         ("incremental_digests_per_s", Json.Float incr_rate);
         ("incremental_speedup", Json.Float (incr_rate /. full_rate));
         ("explore", Json.List (List.rev !rows)) ])

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the engine primitives                  *)
(* ------------------------------------------------------------------ *)

let micro () =
  line "== Bechamel micro-benchmarks ==";
  let open Bechamel in
  let open Toolkit in
  (* one Test.make per engine primitive behind the tables above *)
  let pingpong_tab = tab_of (P_examples_lib.Pingpong.program ~rounds:3 ()) in
  let test_interp =
    Test.make ~name:"interpreter: pingpong simulate (d=0 run)"
      (Staged.stage (fun () -> ignore (P_semantics.Simulate.run pingpong_tab)))
  in
  let elevator_tab = tab_of (P_examples_lib.Elevator.program ()) in
  let test_explore =
    Test.make ~name:"checker: elevator explore d=1"
      (Staged.stage (fun () ->
           ignore (Delay_bounded.explore ~delay_bound:1 elevator_tab)))
  in
  let canon = Canon.create elevator_tab in
  let config0, _, _ = P_semantics.Step.initial_config elevator_tab in
  let test_digest =
    Test.make ~name:"checker: configuration digest"
      (Staged.stage (fun () -> ignore (Canon.digest canon config0 [ 0 ])))
  in
  let source = P_syntax.Pretty.program_to_string (P_examples_lib.German.program ()) in
  let test_parse =
    Test.make ~name:"parser: german.p from source"
      (Staged.stage (fun () -> ignore (P_parser.Parser.program_of_string source)))
  in
  let test_dispatch =
    let device = P_examples_lib.Switch_led.new_device () in
    let driver = P_examples_lib.Switch_led.p_driver device in
    driver.P_host.Os_events.add_device ();
    let i = ref 0 in
    Test.make ~name:"runtime: switch-led event dispatch"
      (Staged.stage (fun () ->
           incr i;
           driver.P_host.Os_events.callback
             (P_host.Os_events.Interrupt { line = "switch"; data = !i land 1 })))
  in
  let test_dispatch_hand =
    let device = P_examples_lib.Switch_led.new_device () in
    let driver = P_examples_lib.Switch_led.handwritten_driver device in
    driver.P_host.Os_events.add_device ();
    let i = ref 0 in
    Test.make ~name:"runtime: hand-written event dispatch"
      (Staged.stage (fun () ->
           incr i;
           driver.P_host.Os_events.callback
             (P_host.Os_events.Interrupt { line = "switch"; data = !i land 1 })))
  in
  let tests =
    [ test_interp; test_explore; test_digest; test_parse; test_dispatch;
      test_dispatch_hand ]
  in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
    Benchmark.all cfg Instance.[ monotonic_clock ] test
  in
  let analyze results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Instance.monotonic_clock results
  in
  let rows = ref [] in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
            line "%-45s %12.1f ns/run" name est;
            rows :=
              Json.Obj
                [ ("name", Json.String name); ("ns_per_run", Json.Float est) ]
              :: !rows
          | _ -> line "%-45s (no estimate)" name)
        results)
    tests;
  record "micro" (Json.List (List.rev !rows))

(* ------------------------------------------------------------------ *)
(* bench reduce: state-space reduction across the example suite        *)
(* ------------------------------------------------------------------ *)

(* For each workload, explore under every reduction mode and report the
   state count next to the unreduced baseline. The soundness contract —
   the reduced search reports an error iff the unreduced one does — is
   asserted here, not just measured; a verdict-kind mismatch fails the
   bench. State counts are deterministic, so they (and the ratios) are
   emitted as exact integers and gate in [compare]. *)
let reduce_bench ?(smoke = false) () : bool =
  line "== State-space reduction: sleep-set POR + symmetry ==";
  let subjects =
    let usb_cap = if smoke then 12 else 20 in
    [ ("token-ring", tab_of (P_examples_lib.Token_ring.program ()), 2, None);
      ("elevator", tab_of (P_examples_lib.Elevator.program ()), 2, None) ]
    @ (if smoke then []
       else
         [ ("elevator[d=3]", tab_of (P_examples_lib.Elevator.program ()), 3, None);
           ( "german[n=3,r=2]",
             tab_of (P_examples_lib.German.program ~n:3 ~requests:2 ()),
             2, None ) ])
    @ [ ("usb-stack", tab_of (P_usb.Stack.program ()), 2, Some usb_cap) ]
  in
  let verdict_kind (r : Search.result) =
    match r.verdict with
    | Search.No_error -> "ok"
    | Search.Error_found e -> "error:" ^ P_semantics.Errors.to_string e.error
  in
  line "%-16s %-9s %10s %10s %8s %9s" "workload" "reduce" "states" "pruned"
    "ratio" "time(s)";
  let rows = ref [] in
  let ok = ref true in
  List.iter
    (fun (name, tab, delay_bound, max_depth) ->
      let explore reduce =
        match max_depth with
        | None ->
          Delay_bounded.explore ~delay_bound ~max_states:2_000_000 ~reduce tab
        | Some max_depth ->
          Delay_bounded.explore ~delay_bound ~max_depth ~max_states:2_000_000
            ~reduce tab
      in
      let none = explore Reduce.none in
      List.iter
        (fun reduce ->
          let r = if Reduce.is_none reduce then none else explore reduce in
          if verdict_kind r <> verdict_kind none then begin
            line "FAIL: %s under %a: verdict %s, unreduced says %s" name
              Reduce.pp reduce (verdict_kind r) (verdict_kind none);
            ok := false
          end;
          if r.stats.states > none.stats.states then begin
            line "FAIL: %s under %a explored more states than unreduced" name
              Reduce.pp reduce;
            ok := false
          end;
          let ratio =
            float_of_int r.stats.states /. float_of_int none.stats.states
          in
          line "%-16s %-9s %10d %10d %8.3f %9.2f" name
            (Reduce.to_string reduce) r.stats.states r.stats.pruned ratio
            r.stats.elapsed_s;
          rows :=
            Json.Obj
              [ (* the mode is part of the row identity so that [compare]
                   lines reduced rows up with reduced rows *)
                ( "name",
                  Json.String (name ^ ":" ^ Reduce.to_string reduce) );
                ("mode", Json.String (Reduce.to_string reduce));
                ("delay_bound", Json.Int delay_bound);
                ("verdict", Json.String (verdict_kind r));
                ("states", Json.Int r.stats.states);
                ("pruned", Json.Int r.stats.pruned);
                ("state_ratio", Json.String (Fmt.str "%.3f" ratio));
                ("elapsed_s", Json.Float r.stats.elapsed_s) ]
            :: !rows)
        Reduce.all;
      hr ())
    subjects;
  (* the workloads here are exactly the ones where reduction is claimed
     to help; no strict win on a flagship subject is a regression *)
  let states_of name mode =
    List.find_map
      (fun row ->
        match row with
        | Json.Obj fields
          when List.assoc_opt "name" fields
               = Some (Json.String (name ^ ":" ^ mode)) ->
          (match List.assoc_opt "states" fields with
          | Some (Json.Int n) -> Some n
          | _ -> None)
        | _ -> None)
      !rows
  in
  List.iter
    (fun name ->
      match (states_of name "none", states_of name "full") with
      | Some n, Some f when f < n -> ()
      | Some n, Some f ->
        line "FAIL: %s: full reduction explored %d states vs %d unreduced" name
          f n;
        ok := false
      | _ ->
        line "FAIL: %s: missing rows" name;
        ok := false)
    (if smoke then [ "token-ring"; "elevator"; "usb-stack" ]
     else [ "token-ring"; "elevator"; "german[n=3,r=2]"; "usb-stack" ]);
  record "reduce" (Json.List (List.rev !rows));
  !ok

(* ------------------------------------------------------------------ *)
(* bench load: open-loop serving throughput on the sharded runtime     *)
(* ------------------------------------------------------------------ *)

(* Extends the section 4.1 efficiency comparison from one device to a
   served fleet: an open-loop generator posts requests into the
   effects-based sharded runtime and reports sustained events/sec plus
   post-to-served latency percentiles per shard count. Run-varying counts
   (completed, shed) are emitted as floats so [compare] never gates them;
   the gated metrics are events_per_s (higher-better) and the latency
   percentiles (lower-better, 2x tolerance). *)
let load_bench ?(machines = 100_000) ?(events = 500_000) ?(rate_hz = 0.0)
    ?(shard_counts = [ 1; 2; 4 ]) ?(smoke = false) ?(require_multicore = false)
    () : bool =
  line "== Open-loop load: sharded serving runtime ==";
  line "   (%d machines, %d events%s, shards in %s)" machines events
    (if rate_hz > 0.0 then Fmt.str " at %.0f Hz" rate_hz else " at peak rate")
    (String.concat "," (List.map string_of_int shard_counts));
  let cores = Domain.recommended_domain_count () in
  let valid_parallelism = cores > 1 in
  if not valid_parallelism then
    line
      "warning: recommended_domain_count=1 — shard counts above 1 time-slice \
       one core and are NOT valid parallelism measurements";
  if require_multicore && not valid_parallelism then begin
    line "FAIL: --require-multicore set but this machine reports 1 core";
    false
  end
  else begin
    line "%-14s %10s %10s %12s %10s %10s %10s" "config" "served" "shed"
      "events/s" "p50_us" "p95_us" "p99_us";
    let rows = ref [] in
    let ok = ref true in
    List.iter
      (fun shards ->
        let s =
          P_host.Workload.load_run ~shards ~machines ~events ~rate_hz ()
        in
        if not s.ld_quiesced then begin
          line "FAIL: %d-shard fleet did not quiesce" shards;
          ok := false
        end;
        if smoke && (s.ld_completed = 0 || s.ld_shed <> 0) then begin
          (* the smoke contract: below the ingress bound with unbounded
             mailboxes, every posted event is served and none shed *)
          line "FAIL: smoke expects nonzero throughput and zero shed";
          ok := false
        end;
        let sh = s.ld_shard_stats in
        if shards = 1 && sh.P_runtime.Shard.sh_xfer_batches <> 0 then begin
          (* host posts ride the ingress queues; a single shard has no
             peers, so any transfer batch is a routing bug *)
          line "FAIL: single-shard run consumed %d cross-shard batch(es)"
            sh.P_runtime.Shard.sh_xfer_batches;
          ok := false
        end;
        if s.ld_quiesced && sh.P_runtime.Shard.sh_pending <> 0 then begin
          line "FAIL: %d ingress slot(s) still reserved after quiescence"
            sh.P_runtime.Shard.sh_pending;
          ok := false
        end;
        line "%-14s %10d %10d %12.0f %10.0f %10.0f %10.0f"
          (Fmt.str "%d shard(s)" shards)
          s.ld_completed s.ld_shed s.ld_events_per_s s.ld_p50_us s.ld_p95_us
          s.ld_p99_us;
        rows :=
          Json.Obj
            [ ("name", Json.String (Fmt.str "load-%dshard" shards));
              ("shards", Json.Int shards);
              ("machines", Json.Int machines);
              ("events", Json.Int events);
              ("rate_hz", Json.Float rate_hz);
              ("valid_parallelism", Json.Bool (valid_parallelism || shards = 1));
              ("completed", Json.Float (float_of_int s.ld_completed));
              ("shed", Json.Float (float_of_int s.ld_shed));
              ( "xfer_batches",
                Json.Float (float_of_int sh.P_runtime.Shard.sh_xfer_batches) );
              ( "ingress_msgs",
                Json.Float (float_of_int sh.P_runtime.Shard.sh_ingress_msgs) );
              ("pending", Json.Float (float_of_int sh.P_runtime.Shard.sh_pending));
              ("quiesced", Json.Bool s.ld_quiesced);
              ("elapsed_s", Json.Float s.ld_elapsed_s);
              ("events_per_s", Json.Float s.ld_events_per_s);
              ("p50_us", Json.Float s.ld_p50_us);
              ("p95_us", Json.Float s.ld_p95_us);
              ("p99_us", Json.Float s.ld_p99_us) ]
          :: !rows)
      shard_counts;
    record "load" (Json.List (List.rev !rows));
    !ok
  end

(* ------------------------------------------------------------------ *)
(* bench faults: the adversarial host over the protocol families       *)
(* ------------------------------------------------------------------ *)

(* Per (family x fault class): a fault-injected exploration of the two
   distributed-protocol workload families, recording verdict, exact state
   and transition counts, fired-fault counts, and states/s — exact
   metrics pin the determinism contract in [compare], the derived
   states_per_s gates throughput. A second leg runs each family under
   the serving runtime's adversarial host and records the per-class
   injection and crash-restart counters (single-domain and seeded, so
   they are exact too). Hard contracts: fault-free both families are
   clean, and at least one fault class must change each family's
   verdict — that verdict flip is the point of the experiment. *)

let fault_classes =
  let open P_semantics.Fault in
  [ ("none", none);
    ("drop", { none with drop = 200 });
    ("dup", { none with dup = 300 });
    ("reorder", { none with reorder = 300 });
    ("delay", { none with delay = 300 });
    ("crash", { none with crash = 100 });
    ("mixed", { none with drop = 100; dup = 150; reorder = 100; crash = 50 }) ]

let faults_bench ?(smoke = false) () : bool =
  line "== Fault injection: adversarial host over the protocol families ==";
  line "   (verdict flips are the experiment: dup past ⊕ trips the counted";
  line "    assertions; drop/reorder/crash stall safely)";
  let max_states = if smoke then 30_000 else 300_000 in
  (* checker leg at the exhaustive-exploration size; the serving-runtime
     leg is a single linear schedule, so it affords a larger instance *)
  let host_n = if smoke then 6 else 12 in
  let families =
    [ ( "leader-ring",
        (fun n -> P_examples_lib.Leader_ring.program ~n ()),
        "Starter" );
      ( "failover-chain",
        (fun n -> P_examples_lib.Failover_chain.program ~n ()),
        "Net" ) ]
  in
  let rows = ref [] in
  let ok = ref true in
  line "%-16s %-9s %-10s %9s %12s %8s %12s" "family" "class" "verdict" "states"
    "transitions" "faults" "states/s";
  List.iter
    (fun (fname, family, main) ->
      let tab = tab_of (family 3) in
      let refuted = ref 0 in
      List.iter
        (fun (cname, plan) ->
          let faults = P_semantics.Fault.with_seed 0 plan in
          let r =
            if P_semantics.Fault.is_none plan then
              Delay_bounded.explore ~delay_bound:2 ~max_states tab
            else Delay_bounded.explore ~delay_bound:2 ~max_states ~faults tab
          in
          let verdict =
            match r.verdict with
            | Search.No_error -> "clean"
            | Search.Error_found _ ->
              incr refuted;
              "refuted"
          in
          if P_semantics.Fault.is_none plan && verdict <> "clean" then begin
            line "FAIL: %s must be clean without injection" fname;
            ok := false
          end;
          let per_s =
            if r.stats.elapsed_s > 0.0 then
              float_of_int r.stats.states /. r.stats.elapsed_s
            else 0.0
          in
          line "%-16s %-9s %-10s %9d %12d %8d %12.0f" fname cname verdict
            r.stats.states r.stats.transitions r.stats.faults per_s;
          rows :=
            Json.Obj
              [ ("name", Json.String (fname ^ "/" ^ cname));
                ("family", Json.String fname);
                ("class", Json.String cname);
                ("verdict", Json.String verdict);
                ("states", Json.Int r.stats.states);
                ("transitions", Json.Int r.stats.transitions);
                ("faults_fired", Json.Int r.stats.faults);
                ("truncated", Json.Bool r.stats.truncated);
                ("elapsed_s", Json.Float r.stats.elapsed_s) ]
            :: !rows)
        fault_classes;
      if !refuted = 0 then begin
        line "FAIL: no fault class changed %s's verdict" fname;
        ok := false
      end;
      (* serving-runtime leg: the same family under the scheduler's
         adversarial host (delay is checker-only, so the mixed plan here
         carries the other four classes) *)
      (* gentler rates than the checker leg: the single schedule must
         survive its one-shot wiring phase to generate protocol traffic *)
      let host_plan =
        P_semantics.Fault.with_seed 2
          { P_semantics.Fault.none with
            drop = 30;
            dup = 80;
            reorder = 60;
            crash = 40 }
      in
      let driver = P_compile.Compile.compile_full (family host_n) in
      let fleet = if smoke then 20 else 200 in
      let s =
        P_runtime.Sched.create ~policy:P_runtime.Sched.Fifo ~seed:1
          ~faults:host_plan driver
      in
      let t0 = Unix.gettimeofday () in
      let outcome =
        try
          for _ = 1 to fleet do
            ignore (P_runtime.Sched.create_machine s main : int)
          done;
          P_runtime.Sched.run s;
          "quiescent"
        with P_runtime.Exec.Runtime_error _ -> "assertion-refuted"
      in
      let host_elapsed = Unix.gettimeofday () -. t0 in
      let st = P_runtime.Sched.stats s in
      line
        "%-16s %-9s %-10s dequeues=%d drops=%d dups=%d reorders=%d restarts=%d"
        fname "host" outcome st.P_runtime.Sched.st_dequeues
        st.P_runtime.Sched.st_fault_drops st.P_runtime.Sched.st_fault_dups
        st.P_runtime.Sched.st_fault_reorders st.P_runtime.Sched.st_crash_restarts;
      rows :=
        Json.Obj
          [ ("name", Json.String (fname ^ "/host"));
            ("family", Json.String fname);
            ("class", Json.String "host-mixed");
            ("fleet", Json.Int fleet);
            ("outcome", Json.String outcome);
            ("dequeues", Json.Int st.P_runtime.Sched.st_dequeues);
            ("sends", Json.Int st.P_runtime.Sched.st_sends);
            ("fault_drops", Json.Int st.P_runtime.Sched.st_fault_drops);
            ("fault_dups", Json.Int st.P_runtime.Sched.st_fault_dups);
            ("fault_reorders", Json.Int st.P_runtime.Sched.st_fault_reorders);
            ("crash_restarts", Json.Int st.P_runtime.Sched.st_crash_restarts);
            ("shed_mailbox", Json.Int st.P_runtime.Sched.st_shed_mailbox);
            ("elapsed_s", Json.Float host_elapsed) ]
        :: !rows)
    families;
  record "faults" (Json.List (List.rev !rows));
  !ok

(* ------------------------------------------------------------------ *)
(* bench compare: regression gate between two p-bench/1 documents      *)
(* ------------------------------------------------------------------ *)

(* How a metric may legitimately move between two runs. Exact metrics are
   the determinism contract (state/transition counts, verdicts, bug
   depths): any difference at all is a regression, on any machine. The
   other two are performance metrics and only gate within a relative
   tolerance — and only when both documents came from comparable
   machines, which is what [--exact-only] is for when they did not. *)
type direction = Exact | Lower_better | Higher_better

type mval = Num of float | Word of string

let mval_str = function
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%g" f
  | Word s -> s

let ends_with suffix s = String.ends_with ~suffix s

(* Classify a leaf by its key name, falling back on its runtime type.
   [None] means context or identity, not a result (core counts, sweep
   parameters, machine-dependent validity flags): never gated. *)
let classify key (v : Json.t) : direction option =
  if ends_with "per_s" key || key = "speedup" then Some Higher_better
  else if
    ends_with "elapsed_s" key || ends_with "_ns" key || key = "ns_per_run"
    || ends_with "_mb" key || key = "bytes_per_state"
    || ends_with "_us" key
  then Some Lower_better
  else
    match (key, v) with
    | ("valid_parallelism" | "cores" | "delay_bound" | "domains"
      | "clients" | "events" | "rounds" | "shards" | "machines"
      | "rate_hz"), _ -> None
    | _, (Json.Bool _ | Json.Null | Json.String _ | Json.Int _) -> Some Exact
    | _, (Json.Float _ | Json.Obj _ | Json.List _) -> None

let mval_of (v : Json.t) : mval =
  match v with
  | Json.Int i -> Num (float_of_int i)
  | Json.Float f -> Num f
  | Json.Bool b -> Word (string_of_bool b)
  | Json.String s -> Word s
  | Json.Null -> Word "null"
  | Json.Obj _ | Json.List _ -> Word "<composite>"

(* A human-stable path segment for a list element: prefer its identity
   fields over its position, so two documents whose sweeps enumerate the
   same cells in a different order still line up metric-for-metric. *)
let label_of_item fields =
  let find k =
    match List.assoc_opt k fields with
    | Some (Json.String s) -> Some s
    | Some (Json.Int n) -> Some (string_of_int n)
    | _ -> None
  in
  let base =
    List.find_map find
      [ "benchmark"; "machine"; "driver"; "name"; "scheduler"; "search";
        "append"; "mode"; "store" ]
  in
  let discs =
    List.filter_map
      (fun k -> Option.map (fun v -> k ^ "=" ^ v) (find k))
      [ "delay_bound"; "domains"; "clients" ]
  in
  match (base, discs) with
  | None, [] -> None
  | None, ds -> Some (String.concat "," ds)
  | Some b, [] -> Some b
  | Some b, ds -> Some (b ^ "[" ^ String.concat "," ds ^ "]")

let rec flatten path key (j : Json.t) acc =
  match j with
  | Json.Obj fields ->
    let acc =
      (* derived throughput: any stats-like block carrying both a state
         count and a wall time gets a states_per_s metric, so a slowdown
         is gated in the unit the default threshold is stated in *)
      match
        ( List.assoc_opt "states" fields,
          List.assoc_opt "elapsed_s" fields )
      with
      | Some (Json.Int states), Some elapsed when states > 0 -> (
        match Json.to_float elapsed with
        | Some el when el > 0.0 ->
          (path ^ "/states_per_s", Higher_better, Num (float_of_int states /. el))
          :: acc
        | _ -> acc)
      | _ -> acc
    in
    List.fold_left (fun acc (k, v) -> flatten (path ^ "/" ^ k) k v acc) acc fields
  | Json.List items ->
    let _, acc =
      List.fold_left
        (fun (i, acc) item ->
          let seg =
            match item with
            | Json.Obj fields -> (
              match label_of_item fields with
              | Some l -> l
              | None -> string_of_int i)
            | _ -> string_of_int i
          in
          (i + 1, flatten (path ^ "/" ^ seg) key item acc))
        (0, acc) items
    in
    acc
  | leaf -> (
    (* the work-stealing subtree is special: its runs are truncated by the
       smoke budget, and truncated parallel counts (states, transitions,
       max_depth) are scheduling-dependent — the determinism contract only
       pins them for non-truncated runs. Its booleans (triple_identical,
       truncated) stay exact; everything else there is perf-only. *)
    let dir =
      if String.starts_with ~prefix:"/parallel_scaling" path then
        match leaf with
        | Json.Bool _ -> classify key leaf
        | _ -> ( match classify key leaf with Some Exact -> None | d -> d)
      else classify key leaf
    in
    match dir with
    | None -> acc
    | Some dir -> (path, dir, mval_of leaf) :: acc)

(* Per-metric relative tolerance: derived throughput gates at the base
   threshold (default 20%, [--threshold PCT]); raw wall-time and
   allocation numbers are noisier in shared CI containers and get 1.5x
   headroom; tail-latency percentiles (µs keys) are the noisiest class of
   all — scheduling jitter lands directly in p99 — and get 2x. Exact
   metrics have no tolerance at all. *)
let tolerance ~base key =
  if ends_with "per_s" key || key = "speedup" then base
  else if ends_with "_us" key then base *. 2.0
  else base *. 1.5

let last_segment path =
  match String.rindex_opt path '/' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let compare_docs ~threshold ~exact_only old_path new_path =
  let load p =
    match Json.of_string (In_channel.with_open_bin p In_channel.input_all) with
    | j -> j
    | exception Json.Parse_error msg ->
      prerr_endline ("bench compare: " ^ p ^ ": " ^ msg);
      exit 2
    | exception Sys_error msg ->
      prerr_endline ("bench compare: " ^ msg);
      exit 2
  in
  let old_doc = load old_path and new_doc = load new_path in
  (* Machine context: relative performance comparisons across different
     machines are meaningless; warn loudly but keep gating the exact
     (machine-independent) metrics either way. *)
  let machine_field doc k =
    match Json.path doc [ "machine"; k ] with
    | Some (Json.String s) -> s
    | Some (Json.Int n) -> string_of_int n
    | _ -> "?"
  in
  List.iter
    (fun k ->
      let o = machine_field old_doc k and n = machine_field new_doc k in
      if o <> n then
        line
          "warning: machine context differs (%s: %s -> %s)%s" k o n
          (if exact_only then ""
           else " — performance deltas below are not comparable"))
    [ "cores"; "ocaml_version"; "word_size"; "os_type" ];
  let orev = machine_field old_doc "git_rev"
  and nrev = machine_field new_doc "git_rev" in
  if orev <> nrev then line "comparing git revs %s -> %s" orev nrev;
  let metrics doc p =
    match Json.member "results" doc with
    | Some r -> flatten "" "results" r []
    | None ->
      prerr_endline ("bench compare: " ^ p ^ ": no \"results\" object");
      exit 2
  in
  let old_m = metrics old_doc old_path and new_m = metrics new_doc new_path in
  let new_tbl = Hashtbl.create 256 and old_tbl = Hashtbl.create 256 in
  List.iter (fun (p, _, v) -> Hashtbl.replace new_tbl p v) new_m;
  List.iter (fun (p, _, _) -> Hashtbl.replace old_tbl p ()) old_m;
  let compared = ref 0 and regressions = ref 0 and improved = ref 0 in
  let regression fmt =
    incr regressions;
    line ("REGRESSION " ^^ fmt)
  in
  List.iter
    (fun (path, dir, ov) ->
      if (not exact_only) || dir = Exact then
        match Hashtbl.find_opt new_tbl path with
        | None ->
          (* baseline coverage lost: a benchmark that stopped being run
             can hide any regression, so it is one *)
          regression "%-56s present in baseline, missing in new run" path
        | Some nv -> (
          incr compared;
          let tol = tolerance ~base:threshold (last_segment path) in
          match (dir, ov, nv) with
          | Exact, _, _ ->
            if ov <> nv then
              regression "%-56s exact: %s -> %s" path (mval_str ov)
                (mval_str nv)
          | Lower_better, Num o, Num n ->
            if o > 0.0 && n > o *. (1.0 +. tol) then
              regression "%-56s %s -> %s (+%.0f%%, tolerance %.0f%%)" path
                (mval_str ov) (mval_str nv)
                ((n /. o -. 1.0) *. 100.0)
                (tol *. 100.0)
            else if o > 0.0 && n < o *. (1.0 -. tol) then incr improved
          | Higher_better, Num o, Num n ->
            if o > 0.0 && n < o *. (1.0 -. tol) then
              regression "%-56s %s -> %s (-%.0f%%, tolerance %.0f%%)" path
                (mval_str ov) (mval_str nv)
                ((1.0 -. n /. o) *. 100.0)
                (tol *. 100.0)
            else if o > 0.0 && n > o *. (1.0 +. tol) then incr improved
          | _, _, _ -> ()))
    old_m;
  let new_only =
    List.length (List.filter (fun (p, _, _) -> not (Hashtbl.mem old_tbl p)) new_m)
  in
  line "compared %d metric(s)%s: %d regression(s), %d improvement(s)%s"
    !compared
    (if exact_only then " (exact only)" else "")
    !regressions !improved
    (if new_only > 0 then Printf.sprintf ", %d new-only metric(s)" new_only
     else "");
  !regressions = 0

(* ------------------------------------------------------------------ *)

let all () =
  fig7 ();
  hr ();
  bugs ();
  hr ();
  fig8 ();
  hr ();
  fig8_stores ();
  hr ();
  overhead ();
  hr ();
  ablation ();
  hr ();
  protocol_scaling ();
  hr ();
  ignore (parallel_scaling () : bool);
  hr ();
  ignore (load_bench () : bool);
  hr ();
  ignore (faults_bench () : bool);
  hr ();
  digest_throughput ();
  hr ();
  micro ()

(* Pull [--json FILE] out of argv (any position after the subcommand),
   returning the remaining arguments. *)
let extract_json_path args =
  let rec go acc = function
    | [] -> (None, List.rev acc)
    | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
    | a :: rest -> go (a :: acc) rest
  in
  go [] args

(* Pull a bare [--flag] out of argv, returning whether it was present. *)
let extract_flag name args =
  let rec go acc = function
    | [] -> (false, List.rev acc)
    | a :: rest when String.equal a name -> (true, List.rev_append acc rest)
    | a :: rest -> go (a :: acc) rest
  in
  go [] args

(* Pull [--opt VALUE] out of argv. *)
let extract_value name args =
  let rec go acc = function
    | [] -> (None, List.rev acc)
    | a :: v :: rest when String.equal a name -> (Some v, List.rev_append acc rest)
    | a :: rest -> go (a :: acc) rest
  in
  go [] args

let () =
  let json_path, args = extract_json_path (List.tl (Array.to_list Sys.argv)) in
  let require_multicore, args = extract_flag "--require-multicore" args in
  (* Fail on an unwritable --json path now, not after the benchmarks ran. *)
  (match json_path with
  | None -> ()
  | Some path -> (
    try close_out (open_out path)
    with Sys_error msg ->
      prerr_endline ("bench: cannot write " ^ msg);
      exit 2));
  (match args with
  | "fig7" :: _ -> fig7 ()
  | "bugs" :: _ -> bugs ()
  | "fig8" :: rest ->
    let smoke, rest = extract_flag "--smoke" rest in
    let store_s, _rest = extract_value "--store" rest in
    let stores =
      match store_s with
      | None -> store_kinds
      | Some s -> (
        match State_store.kind_of_string s with
        | Ok k -> [ k ]
        | Error e ->
          prerr_endline ("bench fig8: " ^ e);
          exit 2)
    in
    if smoke then begin
      fig8 ~max_states:2_000 ();
      hr ();
      fig8_stores ~max_states:20_000 ~stores ()
    end
    else begin
      fig8 ();
      hr ();
      fig8_stores ~stores ()
    end
  | "overhead" :: _ -> overhead ()
  | "ablation" :: _ -> ablation ()
  | "parallel" :: _ | "scaling" :: _ ->
    if not (parallel_scaling ~require_multicore ()) then exit 1
  | "load" :: rest ->
    let smoke, rest = extract_flag "--smoke" rest in
    let num name default rest =
      let s, rest = extract_value name rest in
      match s with
      | None -> (default, rest)
      | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> (n, rest)
        | _ ->
          prerr_endline ("bench load: bad " ^ name ^ " " ^ s);
          exit 2)
    in
    let machines, rest =
      num "--machines" (if smoke then 1_000 else 100_000) rest
    in
    let events, rest = num "--events" (if smoke then 10_000 else 500_000) rest in
    let rate_s, rest = extract_value "--rate" rest in
    let rate_hz =
      match rate_s with
      | None -> 0.0
      | Some s -> (
        match float_of_string_opt s with
        | Some r when r >= 0.0 -> r
        | _ ->
          prerr_endline ("bench load: bad --rate " ^ s);
          exit 2)
    in
    let shards_s, _rest = extract_value "--shards" rest in
    let shard_counts =
      match shards_s with
      | None -> if smoke then [ 1; 2 ] else [ 1; 2; 4 ]
      | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> [ n ]
        | _ ->
          prerr_endline ("bench load: bad --shards " ^ s);
          exit 2)
    in
    if
      not
        (load_bench ~machines ~events ~rate_hz ~shard_counts ~smoke
           ~require_multicore ())
    then exit 1
  | "compare" :: rest -> (
    let exact_only, rest = extract_flag "--exact-only" rest in
    let threshold_s, rest = extract_value "--threshold" rest in
    let threshold =
      match threshold_s with
      | None -> 0.20
      | Some s -> (
        match float_of_string_opt s with
        | Some pct when pct >= 0.0 -> pct /. 100.0
        | _ ->
          prerr_endline ("bench compare: bad --threshold " ^ s);
          exit 2)
    in
    match rest with
    | [ old_path; new_path ] ->
      if not (compare_docs ~threshold ~exact_only old_path new_path) then
        exit 1
    | _ ->
      prerr_endline
        "usage: bench compare OLD.json NEW.json [--threshold PCT] \
         [--exact-only]";
      exit 2)
  | "reduce" :: rest ->
    let smoke, _rest = extract_flag "--smoke" rest in
    if not (reduce_bench ~smoke ()) then exit 1
  | "faults" :: rest ->
    let smoke, _rest = extract_flag "--smoke" rest in
    if not (faults_bench ~smoke ()) then exit 1
  | "protocol-scaling" :: _ -> protocol_scaling ()
  | "digest-throughput" :: _ | "digest" :: _ -> digest_throughput ()
  | "micro" :: _ -> micro ()
  | "quick" :: _ ->
    (* a fast smoke pass *)
    fig7 ~max_states:20_000 ~bounds:[ 0; 1; 2 ] ();
    hr ();
    fig8 ~max_states:20_000 ();
    hr ();
    overhead ~events:200 ()
  | "smoke" :: _ ->
    (* tiny budgets: exercises every recorded code path in seconds, for the
       @bench-smoke alias wired into dune runtest *)
    fig7 ~max_states:2_000 ~bounds:[ 0; 1 ] ();
    hr ();
    fig8 ~max_states:2_000 ();
    hr ();
    fig8_stores ~max_states:5_000 ();
    hr ();
    overhead ~events:50 ();
    hr ();
    (* determinism across domain counts is a hard contract: fail the smoke
       run (and with it CI) if the triples ever diverge *)
    if
      not (parallel_scaling ~max_states:20_000 ~domain_counts:[ 1; 2 ] ~bounds:[ 2 ] ())
    then exit 1;
    hr ();
    (* the serving runtime's smoke contract: every event served, none shed *)
    if
      not
        (load_bench ~machines:500 ~events:5_000 ~shard_counts:[ 1; 2 ]
           ~smoke:true ())
    then exit 1;
    hr ();
    (* reduction soundness (same verdicts) and the strict-win contract are
       hard failures; the reduced state counts land in the document as
       exact metrics, so [compare] pins them across runs *)
    if not (reduce_bench ~smoke:true ()) then exit 1;
    hr ();
    (* the adversarial-host contract: fault-free the protocol families are
       clean, at least one fault class refutes each, and the per-class
       counts land as exact metrics the gate pins *)
    if not (faults_bench ~smoke:true ()) then exit 1
  | [] | _ -> all ());
  match json_path with None -> () | Some path -> write_results path
