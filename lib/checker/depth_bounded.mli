(** Depth-bounded systematic testing: the baseline bounding technique the
    paper contrasts with delay bounding. Every enabled machine may run at
    every scheduling point — full scheduling nondeterminism — and paths are
    cut at [depth_bound] atomic blocks. An {!Engine.run} instantiation
    over {!Engine.full_nondet}. *)

val explore :
  ?max_states:int ->
  ?fingerprint:Fingerprint.mode ->
  ?instr:Search.instr ->
  depth_bound:int ->
  P_static.Symtab.t ->
  Search.result
(** [explore ~depth_bound tab]: breadth-first over all interleavings of at
    most [depth_bound] atomic blocks; shortest counterexample first.
    [fingerprint] selects the state-key strategy (default [Incremental]).
    [instr] reports metrics and progress; results are unaffected. *)
