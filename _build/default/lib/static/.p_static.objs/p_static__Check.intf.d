lib/static/check.mli: Fmt P_syntax Symtab
