(* Tests for the operational semantics: values and ⊥ propagation, the
   deduplicating queue, and the statement/event rules of Figures 4–6,
   exercised through small programs driven by the simulator and by
   Step.run_atomic directly. *)

open P_syntax
open P_semantics

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ---------------- values ---------------- *)

let test_value_bottom_propagation () =
  let open Value in
  (match binop Ast.Add Null (Int 3) with
  | Ok Null -> ()
  | _ -> Alcotest.fail "⊥ + 3 = ⊥");
  (match binop Ast.Eq Null Null with
  | Ok Null -> ()
  | _ -> Alcotest.fail "⊥ == ⊥ = ⊥");
  (match unop Ast.Not Null with
  | Ok Null -> ()
  | _ -> Alcotest.fail "!⊥ = ⊥");
  match binop Ast.And (Bool true) Null with
  | Ok Null -> ()
  | _ -> Alcotest.fail "true && ⊥ = ⊥"

let test_value_arith () =
  let open Value in
  (match binop Ast.Div (Int 7) (Int 2) with
  | Ok (Int 3) -> ()
  | _ -> Alcotest.fail "7/2");
  (match binop Ast.Div (Int 1) (Int 0) with
  | Type_error _ -> ()
  | _ -> Alcotest.fail "div by zero is an error");
  (match binop Ast.Mod (Int 7) (Int 3) with
  | Ok (Int 1) -> ()
  | _ -> Alcotest.fail "7 mod 3");
  match binop Ast.Add (Bool true) (Int 1) with
  | Type_error _ -> ()
  | _ -> Alcotest.fail "bool + int is an error"

let test_value_equality () =
  let open Value in
  (match binop Ast.Eq (Machine (Mid.of_int 2)) (Machine (Mid.of_int 2)) with
  | Ok (Bool true) -> ()
  | _ -> Alcotest.fail "machine equality");
  (match binop Ast.Neq (Event (Names.Event.of_string "a")) (Event (Names.Event.of_string "b")) with
  | Ok (Bool true) -> ()
  | _ -> Alcotest.fail "event inequality");
  check bool_t "truth of int" true (truth (Int 3) = None);
  check bool_t "truth of bool" true (truth (Bool false) = Some false)

(* ---------------- the ⊕ queue ---------------- *)

let ev = Names.Event.of_string

let test_equeue_dedup () =
  let q = Equeue.empty in
  let q = Equeue.append q (ev "a") Value.Null in
  let q = Equeue.append q (ev "a") Value.Null in
  check int_t "identical pair dropped" 1 (Equeue.length q);
  let q = Equeue.append q (ev "a") (Value.Int 1) in
  check int_t "distinct payload kept" 2 (Equeue.length q);
  let q = Equeue.append_no_dedup q (ev "a") Value.Null in
  check int_t "no-dedup append keeps duplicate" 3 (Equeue.length q)

let test_equeue_deferred_scan () =
  let q =
    List.fold_left
      (fun q (e, v) -> Equeue.append q (ev e) v)
      Equeue.empty
      [ ("a", Value.Null); ("b", Value.Null); ("c", Value.Null) ]
  in
  let deferred = Names.Event.Set.of_list [ ev "a" ] in
  (match Equeue.dequeue_first ~deferred q with
  | Some (entry, rest) ->
    check bool_t "skips deferred head" true (Names.Event.equal entry.event (ev "b"));
    (* the deferred entry stays at the front, order otherwise preserved *)
    check bool_t "order preserved" true
      (List.map (fun (e : Equeue.entry) -> Names.Event.to_string e.event) (Equeue.to_list rest)
      = [ "a"; "c" ])
  | None -> Alcotest.fail "dequeue should succeed");
  let all = Names.Event.Set.of_list [ ev "a"; ev "b"; ev "c" ] in
  check bool_t "all deferred blocks" true (Equeue.dequeue_first ~deferred:all q = None);
  check bool_t "has_dequeuable" true (Equeue.has_dequeuable ~deferred q);
  check bool_t "has_dequeuable false" false (Equeue.has_dequeuable ~deferred:all q)

(* qcheck properties of the queue *)

let entry_gen =
  QCheck2.Gen.(
    map2
      (fun e p -> (ev (Fmt.str "e%d" e), Value.Int p))
      (int_range 0 3) (int_range 0 2))

let prop_dedup_idempotent =
  QCheck2.Test.make ~name:"⊕ is idempotent" ~count:300
    QCheck2.Gen.(list_size (int_range 0 12) entry_gen)
    (fun entries ->
      let q = List.fold_left (fun q (e, v) -> Equeue.append q e v) Equeue.empty entries in
      let q' = List.fold_left (fun q (e, v) -> Equeue.append q e v) q entries in
      Equeue.equal q q')

let prop_dedup_unique =
  QCheck2.Test.make ~name:"⊕ keeps entries unique" ~count:300
    QCheck2.Gen.(list_size (int_range 0 20) entry_gen)
    (fun entries ->
      let q = List.fold_left (fun q (e, v) -> Equeue.append q e v) Equeue.empty entries in
      let l = Equeue.to_list q in
      List.length (List.sort_uniq Equeue.entry_compare l) = List.length l)

let prop_dequeue_never_deferred =
  QCheck2.Test.make ~name:"dequeue_first never returns a deferred event" ~count:300
    QCheck2.Gen.(
      pair (list_size (int_range 0 12) entry_gen) (list_size (int_range 0 3) (int_range 0 3)))
    (fun (entries, deferred_ids) ->
      let q = List.fold_left (fun q (e, v) -> Equeue.append q e v) Equeue.empty entries in
      let deferred =
        Names.Event.Set.of_list (List.map (fun i -> ev (Fmt.str "e%d" i)) deferred_ids)
      in
      match Equeue.dequeue_first ~deferred q with
      | None -> not (Equeue.has_dequeuable ~deferred q)
      | Some (entry, rest) ->
        (not (Names.Event.Set.mem entry.event deferred))
        && Equeue.length rest = Equeue.length q - 1)

(* ---------------- statement semantics via tiny programs ---------------- *)

open Builder

let sim ?(machines = []) ?(events = []) main_states ~main_vars =
  let m = machine "Main" ~vars:main_vars main_states in
  let p =
    program
      ~events:(List.map event ([ "tick"; "tock" ] @ events))
      ~machines:(m :: machines) "Main"
  in
  let tab = P_static.Check.run_exn p in
  Simulate.run tab

let main_store (r : Simulate.result) =
  let m =
    Config.fold
      (fun _ (m : Machine.t) acc ->
        if Names.Machine.to_string m.name = "Main" then Some m else acc)
      r.config None
  in
  match m with
  | Some m -> m.store
  | None -> Alcotest.fail "Main machine not found"

let get_int store name =
  match Names.Var.Map.find_opt (Names.Var.of_string name) store with
  | Some (Value.Int i) -> i
  | other -> Alcotest.failf "%s = %a" name Fmt.(option P_semantics.Value.pp) other

let test_stmt_arith_and_while () =
  let r =
    sim
      ~main_vars:[ var_decl "x" Ptype.Int; var_decl "acc" Ptype.Int ]
      [ state "S"
          ~entry:
            (seq
               [ assign "x" (int 5);
                 assign "acc" (int 0);
                 while_ (v "x" > int 0)
                   (seq [ assign "acc" (v "acc" + v "x"); assign "x" (v "x" - int 1) ]) ])
      ]
  in
  check bool_t "quiescent" true (r.status = Simulate.Quiescent);
  check int_t "sum 5..1" 15 (get_int (main_store r) "acc")

let test_stmt_if_branches () =
  let r =
    sim
      ~main_vars:[ var_decl "a" Ptype.Int; var_decl "b" Ptype.Int ]
      [ state "S"
          ~entry:
            (seq
               [ if_ (int 1 < int 2) (assign "a" (int 10)) (assign "a" (int 20));
                 if_ (int 3 < int 2) (assign "b" (int 10)) (assign "b" (int 20)) ]) ]
  in
  check int_t "then" 10 (get_int (main_store r) "a");
  check int_t "else" 20 (get_int (main_store r) "b")

let test_byte_wraparound () =
  let r =
    sim
      ~main_vars:[ var_decl "b" Ptype.Byte ]
      [ state "S" ~entry:(seq [ assign "b" (int 250); assign "b" (v "b" + int 10) ]) ]
  in
  check int_t "byte wraps" 4 (get_int (main_store r) "b")

let test_assert_failure_is_error () =
  let r = sim ~main_vars:[] [ state "S" ~entry:(assert_ (int 1 == int 2)) ] in
  match r.status with
  | Simulate.Error { kind = Errors.Assert_failure _; _ } -> ()
  | s -> Alcotest.failf "expected assert failure, got %a" Simulate.pp_status s

let test_null_condition_is_error () =
  let r =
    sim
      ~main_vars:[ var_decl "x" Ptype.Int ]
      [ state "S" ~entry:(if_ (v "x" == int 1) skip skip) ]
  in
  match r.status with
  | Simulate.Error { kind = Errors.Eval_error _; _ } -> ()
  | s -> Alcotest.failf "⊥ condition should error, got %a" Simulate.pp_status s

let test_send_to_null_error () =
  let r =
    sim
      ~main_vars:[ var_decl "m" Ptype.Machine_id ]
      [ state "S" ~entry:(send (v "m") "tick") ]
  in
  match r.status with
  | Simulate.Error { kind = Errors.Send_to_null _; _ } -> ()
  | s -> Alcotest.failf "expected SEND-FAIL1, got %a" Simulate.pp_status s

let test_send_to_deleted_error () =
  let other = machine "Other" [ state "O" ~entry:delete ] in
  let r =
    sim
      ~machines:[ other ]
      ~main_vars:[ var_decl "m" Ptype.Machine_id ]
      [ state "S" ~entry:(seq [ new_ "m" "Other" []; send (v "m") "tick" ]) ]
  in
  match r.status with
  | Simulate.Error { kind = Errors.Send_to_deleted _; _ } -> ()
  | s -> Alcotest.failf "expected SEND-FAIL2, got %a" Simulate.pp_status s

let test_unhandled_event_error () =
  let other = machine "Other" [ state "O" ~entry:skip ] in
  let r =
    sim
      ~machines:[ other ]
      ~main_vars:[ var_decl "m" Ptype.Machine_id ]
      [ state "S" ~entry:(seq [ new_ "m" "Other" []; send (v "m") "tick" ]) ]
  in
  match r.status with
  | Simulate.Error { kind = Errors.Unhandled_event e; _ } ->
    check bool_t "event name" true (Names.Event.to_string e = "tick")
  | s -> Alcotest.failf "expected POP-FAIL, got %a" Simulate.pp_status s

let test_livelock_detected () =
  let r = sim ~main_vars:[] [ state "S" ~entry:(while_ tru skip) ] in
  match r.status with
  | Simulate.Error { kind = Errors.Livelock; _ } -> ()
  | s -> Alcotest.failf "expected livelock, got %a" Simulate.pp_status s

let test_raise_discards_continuation () =
  (* the statement after raise must not execute *)
  let r =
    sim
      ~main_vars:[ var_decl "x" Ptype.Int ]
      [ state "S"
          ~entry:(seq [ assign "x" (int 1); raise_ "tick"; assign "x" (int 99) ]);
        state "T" ~entry:skip ]
    |> fun r -> r
  in
  (* raise tick is unhandled in S -> pop-fail; but x must still be 1 *)
  ignore r;
  let m = machine "Main" ~vars:[ var_decl "x" Ptype.Int ]
      [ state "S" ~entry:(seq [ assign "x" (int 1); raise_ "tick"; assign "x" (int 99) ]);
        state "T" ~entry:skip ]
      ~steps:[ ("S", "tick", "T") ]
  in
  let p = program ~events:[ event "tick"; event "tock" ] ~machines:[ m ] "Main" in
  let tab = P_static.Check.run_exn p in
  let r = Simulate.run tab in
  check bool_t "quiescent" true (r.status = Simulate.Quiescent);
  check int_t "continuation discarded" 1 (get_int (main_store r) "x")

let test_leave_stops_entry () =
  let m =
    machine "Main" ~vars:[ var_decl "x" Ptype.Int ]
      [ state "S" ~entry:(seq [ assign "x" (int 1); leave; assign "x" (int 2) ]) ]
  in
  let p = program ~events:[ event "tick" ] ~machines:[ m ] "Main" in
  let r = Simulate.run (P_static.Check.run_exn p) in
  check int_t "leave discards rest" 1 (get_int (main_store r) "x")

(* exit statements run on step transitions and on pops *)
let test_exit_on_step () =
  let m =
    machine "Main" ~vars:[ var_decl "exits" Ptype.Int ]
      [ state "S"
          ~entry:(seq [ assign "exits" (int 0); raise_ "tick" ])
          ~exit:(assign "exits" (v "exits" + int 1));
        state "T" ~entry:skip ]
      ~steps:[ ("S", "tick", "T") ]
  in
  let p = program ~events:[ event "tick" ] ~machines:[ m ] "Main" in
  let r = Simulate.run (P_static.Check.run_exn p) in
  check int_t "exit ran once" 1 (get_int (main_store r) "exits")

let test_exit_not_run_on_call () =
  let m =
    machine "Main" ~vars:[ var_decl "exits" Ptype.Int ]
      [ state "S"
          ~entry:(seq [ assign "exits" (int 0); raise_ "tick" ])
          ~exit:(assign "exits" (v "exits" + int 1));
        state "Sub" ~entry:skip ]
      ~calls:[ ("S", "tick", "Sub") ]
  in
  let p = program ~events:[ event "tick" ] ~machines:[ m ] "Main" in
  let r = Simulate.run (P_static.Check.run_exn p) in
  check int_t "call does not exit caller" 0 (get_int (main_store r) "exits")

(* call transition + return pops back into the caller state, running the
   callee's exit *)
let test_call_and_return () =
  let m =
    machine "Main"
      ~vars:[ var_decl "trace" Ptype.Int ]
      [ state "S" ~entry:(seq [ assign "trace" (int 0); raise_ "tick" ]);
        state "Sub"
          ~entry:(seq [ assign "trace" (v "trace" + int 10); return ])
          ~exit:(assign "trace" (v "trace" + int 100)) ]
      ~calls:[ ("S", "tick", "Sub") ]
  in
  let p = program ~events:[ event "tick" ] ~machines:[ m ] "Main" in
  let r = Simulate.run (P_static.Check.run_exn p) in
  (* entry (+10) then exit on return (+100) *)
  check int_t "call/return with exit" 110 (get_int (main_store r) "trace")

(* the call *statement* saves the continuation and resumes it on return *)
let test_call_statement_continuation () =
  let m =
    machine "Main"
      ~vars:[ var_decl "trace" Ptype.Int ]
      [ state "S"
          ~entry:
            (seq
               [ assign "trace" (int 1);
                 call_state "Sub";
                 assign "trace" (v "trace" + int 5) ]);
        state "Sub" ~entry:(seq [ assign "trace" (v "trace" * int 10); return ]) ]
  in
  let p = program ~events:[ event "tick" ] ~machines:[ m ] "Main" in
  let r = Simulate.run (P_static.Check.run_exn p) in
  (* 1, then *10 in Sub, then +5 resumed after return *)
  check int_t "continuation resumes" 15 (get_int (main_store r) "trace")

(* deferred events are inherited through call transitions (the a-map) *)
let test_deferral_inherited_in_call () =
  let m =
    machine "Main"
      ~vars:[ var_decl "got" Ptype.Int ]
      [ state "S" ~defer:[ "tock" ] ~entry:(seq [ assign "got" (int 0); raise_ "tick" ]);
        state "Sub" ~entry:skip;
        state "Handled" ~entry:(assign "got" (int 1)) ]
      ~calls:[ ("S", "tick", "Sub") ]
  in
  let p = program ~events:[ event "tick"; event "tock" ] ~machines:[ m ] "Main" in
  let tab = P_static.Check.run_exn p in
  (* drive it with Step directly: put tock into the queue; Sub has no
     handler for tock; the inherited deferral must keep it queued (not a
     pop-fail) *)
  let config0, id0, _ = Step.initial_config tab in
  let outcome, _ = Step.run_atomic tab config0 id0 ~choices:[] in
  match outcome with
  | Step.Blocked config -> (
    let m0 = Option.get (Config.find config id0) in
    let m0 = { m0 with Machine.queue = Equeue.append m0.Machine.queue (ev "tock") Value.Null } in
    let config = Config.update config id0 m0 in
    match Step.run_atomic tab config id0 ~choices:[] with
    | Step.Blocked config', _ ->
      let m' = Option.get (Config.find config' id0) in
      check int_t "tock still queued" 1 (Equeue.length m'.Machine.queue);
      check bool_t "still in Sub" true
        (match Machine.current_state m' with
        | Some st -> Names.State.to_string st = "Sub"
        | None -> false)
    | o, _ -> Alcotest.failf "expected Blocked, got %s"
        (match o with
         | Step.Progress _ -> "Progress" | Step.Terminated _ -> "Terminated"
         | Step.Failed e -> Fmt.str "Failed: %a" Errors.pp e
         | Step.Need_more_choices -> "NeedChoices" | Step.Blocked _ -> "?"))
  | _ -> Alcotest.fail "main should block after call"

(* an action bound on the current state overrides an inherited deferral *)
let test_action_overrides_inherited_defer () =
  let m =
    machine "Main"
      ~vars:[ var_decl "got" Ptype.Int ]
      ~actions:[ action "Count" (assign "got" (v "got" + int 1)) ]
      [ state "S" ~defer:[ "tock" ] ~entry:(seq [ assign "got" (int 0); raise_ "tick" ]);
        state "Sub" ~entry:skip ]
      ~calls:[ ("S", "tick", "Sub") ]
      ~bindings:[ on ("Sub", "tock") ~do_:"Count" ]
  in
  let p = program ~events:[ event "tick"; event "tock" ] ~machines:[ m ] "Main" in
  let tab = P_static.Check.run_exn p in
  let config0, id0, _ = Step.initial_config tab in
  match Step.run_atomic tab config0 id0 ~choices:[] with
  | Step.Blocked config, _ -> (
    let m0 = Option.get (Config.find config id0) in
    let m0 = { m0 with Machine.queue = Equeue.append m0.Machine.queue (ev "tock") Value.Null } in
    let config = Config.update config id0 m0 in
    match Step.run_atomic tab config id0 ~choices:[] with
    | Step.Blocked config', _ ->
      let m' = Option.get (Config.find config' id0) in
      check int_t "action consumed tock" 0 (Equeue.length m'.Machine.queue);
      check int_t "action ran" 1 (get_int m'.Machine.store "got")
    | _ -> Alcotest.fail "expected Blocked after action")
  | _ -> Alcotest.fail "main should block after call"

(* unhandled event pops through the called state to the caller's handler *)
let test_pop_propagates_to_caller () =
  let m =
    machine "Main"
      ~vars:[ var_decl "got" Ptype.Int ]
      [ state "S" ~entry:(seq [ assign "got" (int 0); raise_ "tick" ]);
        state "Sub" ~entry:skip ~exit:(assign "got" (v "got" + int 100));
        state "Handled" ~entry:(assign "got" (v "got" + int 1)) ]
      ~calls:[ ("S", "tick", "Sub") ]
      ~steps:[ ("S", "tock", "Handled") ]
  in
  let p = program ~events:[ event "tick"; event "tock" ] ~machines:[ m ] "Main" in
  let tab = P_static.Check.run_exn p in
  let config0, id0, _ = Step.initial_config tab in
  match Step.run_atomic tab config0 id0 ~choices:[] with
  | Step.Blocked config, _ -> (
    let m0 = Option.get (Config.find config id0) in
    let m0 = { m0 with Machine.queue = Equeue.append m0.Machine.queue (ev "tock") Value.Null } in
    let config = Config.update config id0 m0 in
    match Step.run_atomic tab config id0 ~choices:[] with
    | Step.Blocked config', _ ->
      let m' = Option.get (Config.find config' id0) in
      (* Sub's exit ran on the pop (+100), then the caller's step handled
         tock (+1) *)
      check int_t "pop + handle" 101 (get_int m'.Machine.store "got");
      check bool_t "now in Handled" true
        (match Machine.current_state m' with
        | Some st -> Names.State.to_string st = "Handled"
        | None -> false)
    | _ -> Alcotest.fail "expected Blocked")
  | _ -> Alcotest.fail "main should block after call"

(* nondet choices are enumerated through the choice interface *)
let test_nondet_choices () =
  let g =
    machine "Main" ~ghost:true
      ~vars:[ var_decl "x" Ptype.Int ]
      [ state "S" ~entry:(if_ nondet (assign "x" (int 1)) (assign "x" (int 2))) ]
  in
  let p = program ~events:[ event "tick" ] ~machines:[ g ] "Main" in
  let tab = P_static.Check.run_exn p in
  let config0, id0, _ = Step.initial_config tab in
  (match Step.run_atomic tab config0 id0 ~choices:[] with
  | Step.Need_more_choices, _ -> ()
  | _ -> Alcotest.fail "expected Need_more_choices");
  let value_of choices =
    match Step.run_atomic tab config0 id0 ~choices with
    | Step.Blocked config, _ ->
      get_int (Option.get (Config.find config id0)).Machine.store "x"
    | _ -> Alcotest.fail "expected Blocked"
  in
  check int_t "true branch" 1 (value_of [ true ]);
  check int_t "false branch" 2 (value_of [ false ])

let test_msg_and_arg () =
  let m =
    machine "Main"
      ~vars:[ var_decl "m" Ptype.Machine_id; var_decl "got" Ptype.Int; var_decl "ev" Ptype.Event ]
      [ state "S" ~entry:(seq [ new_ "m" "Echo" []; send (v "m") "ping" ~payload:(int 7) ]);
        state "Got" ~entry:(seq [ assign "got" arg; assign "ev" msg ]) ]
      ~steps:[ ("S", "pong", "Got") ]
  in
  let echo =
    machine "Echo"
      ~vars:[ var_decl "who" Ptype.Machine_id ]
      [ state "E" ~entry:skip;
        state "R" ~entry:(seq [ send (v "who") "pong" ~payload:(arg + int 1); raise_ "tick" ]) ]
      ~steps:[ ("E", "ping", "Pre"); ("R", "tick", "E") ]
  in
  let echo =
    { echo with
      Ast.states =
        echo.Ast.states
        @ [ state "Pre" ~entry:(seq [ assign "who" null; raise_ "tick" ]) ];
      Ast.steps = echo.Ast.steps @ [ step ("Pre", "tick", "R") ] }
  in
  ignore echo;
  (* simpler: echo replies directly using a stored creator reference *)
  let echo =
    machine "Echo"
      ~vars:[ var_decl "who" Ptype.Machine_id ]
      [ state "E" ~entry:skip;
        state "R"
          ~entry:(seq [ send (v "who") "pong" ~payload:(arg + int 1); raise_ "tick" ]) ]
      ~steps:[ ("E", "ping", "R"); ("R", "tick", "E") ]
  in
  let m =
    { m with
      Ast.states =
        List.map
          (fun (st : Ast.state) ->
            if Names.State.to_string st.state_name = "S" then
              state "S"
                ~entry:
                  (seq
                     [ new_ "m" "Echo" [ ("who", this) ];
                       send (v "m") "ping" ~payload:(int 7) ])
            else st)
          m.Ast.states }
  in
  let p =
    program
      ~events:
        [ event "ping" ~payload:Ptype.Int; event "pong" ~payload:Ptype.Int; event "tick" ]
      ~machines:[ m; echo ] "Main"
  in
  let r = Simulate.run (P_static.Check.run_exn p) in
  let store = main_store r in
  check int_t "arg payload" 8 (get_int store "got");
  match Names.Var.Map.find_opt (Names.Var.of_string "ev") store with
  | Some (Value.Event e) -> check bool_t "msg is pong" true (Names.Event.to_string e = "pong")
  | other -> Alcotest.failf "ev = %a" Fmt.(option P_semantics.Value.pp) other

let test_simulation_deterministic () =
  let tab = P_static.Check.run_exn (P_examples_lib.Elevator.program ()) in
  (* policies carry mutable LCG state: use a fresh one per run *)
  let r1 = Simulate.run ~max_blocks:500 ~policy:(Simulate.policy_seeded 11) tab in
  let r2 = Simulate.run ~max_blocks:500 ~policy:(Simulate.policy_seeded 11) tab in
  check bool_t "same trace" true (r1.trace = r2.trace);
  check bool_t "same config" true (Config.equal r1.config r2.config)

let suite =
  [ Alcotest.test_case "value ⊥ propagation" `Quick test_value_bottom_propagation;
    Alcotest.test_case "value arithmetic" `Quick test_value_arith;
    Alcotest.test_case "value equality" `Quick test_value_equality;
    Alcotest.test_case "equeue dedup" `Quick test_equeue_dedup;
    Alcotest.test_case "equeue deferred scan" `Quick test_equeue_deferred_scan;
    Alcotest.test_case "arith and while" `Quick test_stmt_arith_and_while;
    Alcotest.test_case "if branches" `Quick test_stmt_if_branches;
    Alcotest.test_case "byte wraparound" `Quick test_byte_wraparound;
    Alcotest.test_case "assert failure" `Quick test_assert_failure_is_error;
    Alcotest.test_case "⊥ condition errors" `Quick test_null_condition_is_error;
    Alcotest.test_case "send to null" `Quick test_send_to_null_error;
    Alcotest.test_case "send to deleted" `Quick test_send_to_deleted_error;
    Alcotest.test_case "unhandled event" `Quick test_unhandled_event_error;
    Alcotest.test_case "livelock" `Quick test_livelock_detected;
    Alcotest.test_case "raise discards continuation" `Quick test_raise_discards_continuation;
    Alcotest.test_case "leave" `Quick test_leave_stops_entry;
    Alcotest.test_case "exit on step" `Quick test_exit_on_step;
    Alcotest.test_case "no exit on call" `Quick test_exit_not_run_on_call;
    Alcotest.test_case "call transition + return" `Quick test_call_and_return;
    Alcotest.test_case "call statement continuation" `Quick test_call_statement_continuation;
    Alcotest.test_case "deferral inherited" `Quick test_deferral_inherited_in_call;
    Alcotest.test_case "action overrides defer" `Quick test_action_overrides_inherited_defer;
    Alcotest.test_case "pop to caller" `Quick test_pop_propagates_to_caller;
    Alcotest.test_case "nondet choices" `Quick test_nondet_choices;
    Alcotest.test_case "msg and arg" `Quick test_msg_and_arg;
    Alcotest.test_case "simulation deterministic" `Quick test_simulation_deterministic;
    QCheck_alcotest.to_alcotest prop_dedup_idempotent;
    QCheck_alcotest.to_alcotest prop_dedup_unique;
    QCheck_alcotest.to_alcotest prop_dequeue_never_deferred ]
