lib/static/symtab.ml: Ast Fmt List Loc Names P_syntax Ptype
