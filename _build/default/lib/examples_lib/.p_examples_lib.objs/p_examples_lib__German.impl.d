lib/examples_lib/german.ml: Fmt List P_syntax Stdlib
