lib/static/typecheck.mli: Fmt P_syntax Symtab
