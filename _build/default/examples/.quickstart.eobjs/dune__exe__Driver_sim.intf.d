examples/driver_sim.mli:
