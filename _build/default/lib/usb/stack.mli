(** A composed USB hub stack at demonstration scale: real [Hub] and [Port]
    machines, ghost device hardware and OS models — the interaction
    structure of the paper's section 6 case study ("the hub, each of the
    ports, and each of the devices are designed as P machines"). *)

val device_machine : P_syntax.Ast.machine
val port_machine : P_syntax.Ast.machine
val hub_machine : n_ports:int -> P_syntax.Ast.machine
val os_machine : P_syntax.Ast.machine

val program : ?n_ports:int -> unit -> P_syntax.Ast.program
(** The closed hub-stack program (default 2 ports). Verified clean within
    the test budgets; its state space is large, like the real stack's. *)

val buggy_program : ?n_ports:int -> unit -> P_syntax.Ast.program
(** The stopped hub forgets late port status changes: an unhandled-event
    bug of exactly the class the case study says dominated ("majority of
    the bugs were due to unhandled events"), found at delay bound 0. *)
