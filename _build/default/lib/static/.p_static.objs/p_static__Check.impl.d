lib/static/check.ml: Fmt Ghost P_syntax Printexc Symtab Typecheck Wellformed
