lib/host/os_events.mli: Fmt
