(** Workload driver for the efficiency experiment of section 4.1: deliver
    interrupts at a fixed simulated rate and measure the wall-clock cost of
    handling each one. *)

type stats = {
  events : int;
  total_ns : float;
  mean_ns : float;
  max_ns : float;
  p99_ns : float;
}

val pp_stats : stats Fmt.t

val run :
  ?rate_hz:int ->
  ?events:int ->
  make_event:(int -> Os_events.t) ->
  Os_events.driver ->
  stats
(** [run ~make_event driver] attaches the device, delivers [events]
    (default 1000) callbacks at [rate_hz] (default 100) on the simulated
    clock, detaches, and reports per-event wall-time statistics. *)
