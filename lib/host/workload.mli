(** Workload driver for the efficiency experiment of section 4.1: deliver
    interrupts at a fixed simulated rate and measure the wall-clock cost of
    handling each one. *)

type stats = {
  events : int;
  total_ns : float;
  mean_ns : float;
  max_ns : float;
  p99_ns : float;
}

val pp_stats : stats Fmt.t

val run :
  ?rate_hz:int ->
  ?events:int ->
  make_event:(int -> Os_events.t) ->
  Os_events.driver ->
  stats
(** [run ~make_event driver] attaches the device, delivers [events]
    (default 1000) callbacks at [rate_hz] (default 100) on the simulated
    clock, detaches, and reports per-event wall-time statistics. *)

(** Result of one open-loop load run against the sharded serving runtime
    ({!P_runtime.Shard}): what was offered, served and shed, the sustained
    service rate, and post-to-served wall-clock latency percentiles. *)
type load_stats = {
  ld_machines : int;
  ld_shards : int;
  ld_offered : int;  (** posts attempted by the generator *)
  ld_completed : int;  (** events fully served (latency samples taken) *)
  ld_shed : int;  (** ingress + mailbox drops *)
  ld_quiesced : bool;  (** the fleet drained before the timeout *)
  ld_elapsed_s : float;  (** first post to quiescence *)
  ld_events_per_s : float;  (** sustained service rate over that window *)
  ld_p50_us : float;  (** post-to-served latency percentiles *)
  ld_p95_us : float;
  ld_p99_us : float;
  ld_shard_stats : P_runtime.Shard.stats;
}

val pp_load_stats : load_stats Fmt.t

val load_run :
  ?shards:int ->
  ?machines:int ->
  ?events:int ->
  ?rate_hz:float ->
  ?capacity:int ->
  ?ingress_capacity:int ->
  ?quantum:int ->
  ?timeout_s:float ->
  ?telemetry:P_obs.Telemetry.t ->
  ?metrics:P_obs.Metrics.t ->
  unit ->
  load_stats
(** Drive [events] (default 10⁵) requests at [rate_hz] (default 0. = as
    fast as possible) round-robin into [machines] (default 1000) request
    sinks served by [shards] (default 1) scheduler domains. Open loop:
    arrivals never wait for service, so offered load above the service
    rate surfaces as [ld_shed] (bounded by [ingress_capacity] and any
    mailbox [capacity]) instead of unbounded queue growth. *)
