lib/examples_lib/pingpong.mli: P_syntax
