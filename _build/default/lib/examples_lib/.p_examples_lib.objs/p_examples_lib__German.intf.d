lib/examples_lib/german.mli: P_syntax
