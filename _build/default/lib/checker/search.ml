(** Shared infrastructure of the systematic-testing engines: enumeration of
    ghost [*] choices within one atomic block, exploration statistics, and
    verdicts. *)

module Step = P_semantics.Step
module Config = P_semantics.Config
module Errors = P_semantics.Errors
module Trace = P_semantics.Trace
module Mid = P_semantics.Mid
module Symtab = P_static.Symtab

(** One fully resolved atomic block: the outcome of running a machine with a
    concrete resolution of its ghost choices. *)
type resolved = {
  choices : bool list;
  outcome : Step.outcome;  (** never [Need_more_choices] *)
  items : Trace.item list;
}

(** Enumerate every resolution of the ghost [*] choices hit while running
    machine [mid] one atomic block from [config]. Depth-first, false first,
    so resolutions come out in a deterministic order. *)
let resolutions ?fuel ?dedup (tab : Symtab.t) (config : Config.t) (mid : Mid.t) :
    resolved list =
  let acc = ref [] in
  let rec go choices =
    match Step.run_atomic ?fuel ?dedup tab config mid ~choices with
    | Step.Need_more_choices, _ ->
      go (choices @ [ false ]);
      go (choices @ [ true ])
    | outcome, items -> acc := { choices; outcome; items } :: !acc
  in
  go [];
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Statistics and verdicts                                             *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable states : int;  (** distinct scheduler states visited *)
  mutable transitions : int;  (** atomic blocks executed *)
  mutable max_depth : int;  (** longest path from the initial state, in blocks *)
  mutable truncated : bool;  (** a bound cut the exploration short *)
  mutable elapsed_s : float;
}

let new_stats () =
  { states = 0; transitions = 0; max_depth = 0; truncated = false; elapsed_s = 0. }

let pp_stats ppf s =
  Fmt.pf ppf "%d states, %d transitions, depth %d%s, %.3fs" s.states s.transitions
    s.max_depth
    (if s.truncated then " (truncated)" else "")
    s.elapsed_s

type counterexample = { error : Errors.t; trace : Trace.t; depth : int }

type verdict =
  | No_error  (** the bounded exploration found no error configuration *)
  | Error_found of counterexample

type result = { verdict : verdict; stats : stats }

let pp_verdict ppf = function
  | No_error -> Fmt.string ppf "no error found"
  | Error_found ce ->
    Fmt.pf ppf "ERROR at depth %d: %a" ce.depth Errors.pp ce.error

let pp_result ppf r = Fmt.pf ppf "%a (%a)" pp_verdict r.verdict pp_stats r.stats
