lib/compile/lower.ml: Array Ast Fmt Hashtbl List Loc Names P_static P_syntax Tables
