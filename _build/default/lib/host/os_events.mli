(** The callbacks a driver receives from the simulated kernel: PnP and
    power transitions, interrupts, and I/O requests — the "large number of
    un-coordinated events" of the paper's case study. *)

type t =
  | Pnp_start
  | Pnp_stop
  | Power_suspend
  | Power_resume
  | Interrupt of { line : string; data : int }
  | Io_request of { id : int; kind : string }

val pp : t Fmt.t

(** The interface every driver under test exposes to the host — with or
    without P underneath. *)
type driver = {
  name : string;
  add_device : unit -> unit;  (** EvtAddDevice *)
  remove_device : unit -> unit;  (** EvtRemoveDevice *)
  callback : t -> unit;  (** any other OS callback *)
}
