lib/runtime/rt_trace.ml: Fmt List Option P_semantics P_syntax String
