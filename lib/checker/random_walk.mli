(** Random-walk testing: seeded random schedules with full scheduling
    nondeterminism — the naive baseline the delay-bounded scheduler is
    compared against in the ablation benchmark. *)

(** A failing walk, with enough provenance to reproduce it two ways: rerun
    with [walk_seed], or replay [schedule] directly (see {!Replay} /
    {!Trace_file}). *)
type failure = {
  error : P_semantics.Errors.t;
  trace : P_semantics.Trace.t;
  blocks : int;  (** length of the failing walk, in atomic blocks *)
  walk : int;  (** index of the failing walk *)
  walk_seed : int;  (** the derived per-walk PRNG seed ([seed + walk * 7919]) *)
  schedule : (P_semantics.Mid.t * bool list) list;
      (** replayable schedule of the failing walk *)
}

type result = {
  walks : int;
  errors_found : int;  (** how many walks ended in an error configuration *)
  first_error : failure option;
  seed : int;  (** the base seed the walks were derived from *)
  total_blocks : int;
  elapsed_s : float;
}

val pp_result : result Fmt.t

val run :
  ?walks:int ->
  ?max_blocks:int ->
  ?seed:int ->
  ?instr:Search.instr ->
  P_static.Symtab.t ->
  result
(** [run tab] executes [walks] (default 100) independent random schedules
    of at most [max_blocks] (default 1000) atomic blocks each, with both
    the scheduled machine and the ghost [*] choices drawn from a PRNG
    derived from [seed]. Fully reproducible per seed. [instr] metrics:
    [checker.walks], [checker.walk_blocks], [checker.walk_errors]
    (labelled [engine=random_walk]). *)

val run_portfolio :
  ?walks:int ->
  ?max_blocks:int ->
  ?seed:int ->
  ?domains:int ->
  ?instr:Search.instr ->
  P_static.Symtab.t ->
  result
(** The same [walks] seeded walks as {!run}, raced across [domains]
    (default 4) OCaml domains that share nothing but a found-it flag: walk
    [w] runs on domain [w mod domains] with the derived seed
    [seed + w * 7919], and the first failure stops everyone after their
    current walk. Raises {!Parallel.Invalid_domains} on an impossible
    [domains]; [domains = 1] is exactly {!run}.

    Each individual walk is identical to the sequential one with the same
    [walk_seed], so [first_error] reproduces deterministically: rerun with
    its [walk_seed] or replay its [schedule] through {!Replay} /
    {!Trace_file} — [pc shrink] and [pc replay] work unchanged. Aggregate
    numbers are racy by design: [errors_found] and [total_blocks] cover
    whichever walks completed before the flag drained the portfolio, and
    [first_error] is the lowest-indexed failure *reported*, which on a
    multi-core box may occasionally not be the lowest-indexed failure that
    exists. *)
