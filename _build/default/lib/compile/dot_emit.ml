(** Graphviz (DOT) rendering of P machines.

    The production P of the paper has a visual programming interface; the
    closest faithful artefact for a textual toolchain is a generated state
    diagram. Step transitions are solid edges, call transitions are double
    (bold) edges as in the paper's Figure 1, action bindings are dashed
    self-loops labelled with the action, and each state's deferred and
    postponed sets are listed inside its node. Ghost machines are drawn
    with dashed borders. *)

open P_syntax

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '\n' -> "\\n"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let node_id machine state =
  Fmt.str "%s__%s" (escape (Names.Machine.to_string machine)) (escape state)

(* Lines are joined with DOT's own "\n" escape, applied after escaping the
   user-controlled name fragments. *)
let state_label (st : Ast.state) =
  let lines =
    [ escape (Names.State.to_string st.state_name) ]
    @ (match st.deferred with
      | [] -> []
      | ds ->
        [ "defer: " ^ escape (String.concat ", " (List.map Names.Event.to_string ds)) ])
    @
    match st.postponed with
    | [] -> []
    | ps ->
      [ "postpone: " ^ escape (String.concat ", " (List.map Names.Event.to_string ps))
      ]
  in
  String.concat "\\n" lines

let emit_machine buf (m : Ast.machine) =
  let mname = Names.Machine.to_string m.machine_name in
  Buffer.add_string buf
    (Fmt.str "  subgraph \"cluster_%s\" {\n    label = \"%s%s\";\n%s" (escape mname)
       (if m.machine_ghost then "ghost machine " else "machine ")
       (escape mname)
       (if m.machine_ghost then "    style = dashed;\n" else ""));
  (* states; the initial state gets a bold border and an entry arrow *)
  List.iteri
    (fun i (st : Ast.state) ->
      Buffer.add_string buf
        (Fmt.str "    \"%s\" [shape=box, style=rounded%s, label=\"%s\"];\n"
           (node_id m.machine_name (Names.State.to_string st.state_name))
           (if i = 0 then ",bold" else "")
           (state_label st)))
    m.states;
  (match m.states with
  | first :: _ ->
    Buffer.add_string buf
      (Fmt.str "    \"%s__entry\" [shape=point];\n    \"%s__entry\" -> \"%s\";\n"
         (escape mname) (escape mname)
         (node_id m.machine_name (Names.State.to_string first.state_name)))
  | [] -> ());
  (* step transitions: solid edges *)
  List.iter
    (fun (tr : Ast.transition) ->
      Buffer.add_string buf
        (Fmt.str "    \"%s\" -> \"%s\" [label=\"%s\"];\n"
           (node_id m.machine_name (Names.State.to_string tr.tr_source))
           (node_id m.machine_name (Names.State.to_string tr.tr_target))
           (escape (Names.Event.to_string tr.tr_event))))
    m.steps;
  (* call transitions: the paper's double edges, rendered bold *)
  List.iter
    (fun (tr : Ast.transition) ->
      Buffer.add_string buf
        (Fmt.str
           "    \"%s\" -> \"%s\" [label=\"%s\", style=bold, color=\"black:white:black\"];\n"
           (node_id m.machine_name (Names.State.to_string tr.tr_source))
           (node_id m.machine_name (Names.State.to_string tr.tr_target))
           (escape (Names.Event.to_string tr.tr_event))))
    m.calls;
  (* action bindings: dashed self-loops labelled event/action *)
  List.iter
    (fun (bd : Ast.binding) ->
      Buffer.add_string buf
        (Fmt.str "    \"%s\" -> \"%s\" [label=\"%s / %s\", style=dashed];\n"
           (node_id m.machine_name (Names.State.to_string bd.bd_state))
           (node_id m.machine_name (Names.State.to_string bd.bd_state))
           (escape (Names.Event.to_string bd.bd_event))
           (escape (Names.Action.to_string bd.bd_action))))
    m.bindings;
  Buffer.add_string buf "  }\n"

(** Render the whole program, one cluster per machine. *)
let emit (program : Ast.program) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph P {\n  rankdir = TB;\n  fontname = \"Helvetica\";\n";
  List.iter (emit_machine buf) program.machines;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** Render a single machine as its own digraph. *)
let emit_one (m : Ast.machine) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph P {\n  rankdir = TB;\n";
  emit_machine buf m;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
