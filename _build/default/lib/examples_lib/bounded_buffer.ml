(** A producer/consumer pair over a bounded buffer implemented with
    credits. The producer may only send an [Item] when it holds a credit;
    the consumer returns a [Credit] per item consumed.

    Two P-specific aspects are on display:
    - the deduplicating queue append [⊕] would silently *drop* a second
      in-flight [Item] with an identical payload, so the producer tags each
      item with a strictly increasing sequence number — exactly the
      counter-in-the-payload idiom the paper prescribes for this situation
      (section 3.1);
    - the consumer *defers* [Item] while it is busy digesting, exercising
      deferral under back-pressure.

    The consumer asserts that sequence numbers arrive in order and that the
    number of in-flight items never exceeds the credit bound. *)

open P_syntax.Builder

let events =
  [ event "Item" ~payload:P_syntax.Ptype.Int;
    event "Credit";
    event "Start" ~payload:P_syntax.Ptype.Machine_id;
    event "unit";
    event "digest" ]

let producer ~items ~credits =
  machine "Producer"
    ~vars:
      [ var_decl "consumer" P_syntax.Ptype.Machine_id;
        var_decl "credits" P_syntax.Ptype.Int;
        var_decl "seq" P_syntax.Ptype.Int ]
    [ state "Init"
        ~entry:
          (seq
             [ new_ "consumer" "Consumer" [ ("bound", int credits) ];
               send (v "consumer") "Start" ~payload:this;
               assign "credits" (int credits);
               assign "seq" (int 0);
               raise_ "unit" ]);
      state "Produce"
        ~entry:
          (if_
             (v "seq" < int items && v "credits" > int 0)
             (seq
                [ assign "credits" (v "credits" - int 1);
                  assign "seq" (v "seq" + int 1);
                  send (v "consumer") "Item" ~payload:(v "seq");
                  raise_ "unit" ])
             skip);
      state "GotCredit"
        ~entry:(seq [ assign "credits" (v "credits" + int 1); raise_ "unit" ]) ]
    ~steps:
      [ ("Init", "unit", "Produce");
        ("Produce", "unit", "Produce");
        ("Produce", "Credit", "GotCredit");
        ("GotCredit", "unit", "Produce") ]

let consumer =
  machine "Consumer"
    ~vars:
      [ var_decl "producer" P_syntax.Ptype.Machine_id;
        var_decl "bound" P_syntax.Ptype.Int;
        var_decl "expected" P_syntax.Ptype.Int ]
    [ state "Boot" ~entry:skip;
      state "Ready" ~entry:skip;
      (* while digesting one item, further items are deferred: back-pressure *)
      state "Digesting" ~defer:[ "Item" ]
        ~entry:
          (seq
             [ assign "expected" (v "expected" + int 1);
               assert_ (arg == v "expected");
               send (v "producer") "Credit";
               raise_ "digest" ]) ]
    ~steps:
      [ ("Boot", "Start", "Setup");
        ("Ready", "Item", "Digesting");
        ("Digesting", "digest", "Ready") ]

let consumer =
  let m = consumer in
  { m with
    P_syntax.Ast.states =
      m.P_syntax.Ast.states
      @ [ state "Setup"
            ~entry:(seq [ assign "producer" arg; assign "expected" (int 0); raise_ "unit" ])
        ];
    P_syntax.Ast.steps = m.P_syntax.Ast.steps @ [ step ("Setup", "unit", "Ready") ] }

(** Closed producer/consumer program: [items] items through a buffer of
    [credits] credits. *)
let program ?(items = 6) ?(credits = 2) () =
  program ~events ~machines:[ producer ~items ~credits; consumer ] "Producer"

(** Seeded bug: the producer reuses sequence number 1 for every item, so
    the dedup append [⊕] swallows the second in-flight item and the
    consumer's ordering assertion fails — the very hazard the payload
    counter exists to prevent. *)
let buggy_program ?(items = 6) ?(credits = 2) () =
  let p = program ~items ~credits () in
  { p with
    P_syntax.Ast.machines =
      List.map
        (fun (m : P_syntax.Ast.machine) ->
          if P_syntax.Names.Machine.to_string m.machine_name = "Producer" then
            { m with
              P_syntax.Ast.states =
                List.map
                  (fun (st : P_syntax.Ast.state) ->
                    if P_syntax.Names.State.to_string st.state_name = "Produce" then
                      state "Produce"
                        ~entry:
                          (if_
                             (v "seq" < int items && v "credits" > int 0)
                             (seq
                                [ assign "credits" (v "credits" - int 1);
                                  assign "seq" (v "seq" + int 1);
                                  (* BUG: constant payload defeats ⊕ dedup *)
                                  send (v "consumer") "Item" ~payload:(int 1);
                                  raise_ "unit" ])
                             skip)
                    else st)
                  m.P_syntax.Ast.states }
          else m)
        p.P_syntax.Ast.machines }
