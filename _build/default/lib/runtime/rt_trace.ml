(** Observability hooks for the runtime: the same happenings as
    {!P_semantics.Trace}, but with table indices resolved back to names so
    the runtime-vs-checker equivalence tests can compare the two engines'
    behaviour item by item. *)

type item =
  | Created of { creator : int option; created : int; kind : string }
  | Sent of { src : int; dst : int; event : string; payload : string }
  | Dequeued of { mid : int; event : string }
  | Entered of { mid : int; state : string }
  | Deleted of { mid : int }

let pp_item ppf = function
  | Created { creator; created; kind } ->
    Fmt.pf ppf "%a creates #%d : %s"
      Fmt.(option ~none:(any "<host>") (fmt "#%d"))
      creator created kind
  | Sent { src; dst; event; payload } ->
    if String.equal payload "null" then Fmt.pf ppf "#%d -- %s --> #%d" src event dst
    else Fmt.pf ppf "#%d -- %s(%s) --> #%d" src event payload dst
  | Dequeued { mid; event } -> Fmt.pf ppf "#%d dequeues %s" mid event
  | Entered { mid; state } -> Fmt.pf ppf "#%d enters %s" mid state
  | Deleted { mid } -> Fmt.pf ppf "#%d deleted" mid

(** Project a verifier trace to comparable items (creations, sends,
    dequeues, deletions). *)
let of_semantics_trace (t : P_semantics.Trace.t) : item list =
  List.filter_map
    (function
      | P_semantics.Trace.Created { creator; created; kind } ->
        Some
          (Created
             { creator = Option.map P_semantics.Mid.to_int creator;
               created = P_semantics.Mid.to_int created;
               kind = P_syntax.Names.Machine.to_string kind })
      | P_semantics.Trace.Sent { src; dst; event; payload } ->
        Some
          (Sent
             { src = P_semantics.Mid.to_int src;
               dst = P_semantics.Mid.to_int dst;
               event = P_syntax.Names.Event.to_string event;
               payload = P_semantics.Value.to_string payload })
      | P_semantics.Trace.Dequeued { mid; event; _ } ->
        Some
          (Dequeued
             { mid = P_semantics.Mid.to_int mid;
               event = P_syntax.Names.Event.to_string event })
      | P_semantics.Trace.Deleted { mid } ->
        Some (Deleted { mid = P_semantics.Mid.to_int mid })
      | P_semantics.Trace.Raised _ | P_semantics.Trace.Entered _
      | P_semantics.Trace.Popped _ -> None)
    t

(** Keep only the comparable kinds of a runtime trace (drop state entries). *)
let observable (items : item list) : item list =
  List.filter (function Entered _ -> false | _ -> true) items
